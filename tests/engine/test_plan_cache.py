"""Plan-cache LRU behaviour and epoch-based cache invalidation.

Covers the caching contract end to end: the engine's plan cache is a
genuine LRU (a hit protects an entry from eviction), hit/miss counts
surface on ``ExecutionMetrics``, and any store mutation bumps the store
epoch — dropping both the plan cache and the cost estimator's memoized
COUNT/TC numbers, so the next query re-plans against fresh statistics.
"""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.engine.engine import VamanaEngine

DOC = """<site>
<people>
<person><name>Ada</name><address><province>Vermont</province></address></person>
<person><name>Bob</name></person>
</people>
</site>"""


@pytest.fixture
def store():
    return load_xml(DOC, name="plan-cache")


@pytest.fixture
def engine(store):
    return VamanaEngine(store)


class TestLru:
    def test_repeat_plan_hits(self, engine):
        engine.plan("//person")
        assert (engine.plan_cache_hits, engine.plan_cache_misses) == (0, 1)
        engine.plan("//person")
        assert (engine.plan_cache_hits, engine.plan_cache_misses) == (1, 1)

    def test_hit_protects_entry_from_eviction(self, store):
        engine = VamanaEngine(store, plan_cache_size=2)
        engine.plan("//person")   # oldest
        engine.plan("//name")
        engine.plan("//person")   # hit: //person becomes MRU
        engine.plan("//address")  # full cache: must evict //name, not //person
        hits = engine.plan_cache_hits
        engine.plan("//person")
        assert engine.plan_cache_hits == hits + 1  # survived the eviction
        misses = engine.plan_cache_misses
        engine.plan("//name")
        assert engine.plan_cache_misses == misses + 1  # was evicted

    def test_optimize_flag_is_part_of_the_key(self, engine):
        engine.plan("//person", optimize=False)
        engine.plan("//person", optimize=True)
        assert engine.plan_cache_misses == 2

    def test_zero_capacity_never_caches(self, store):
        engine = VamanaEngine(store, plan_cache_size=0)
        engine.plan("//person")
        engine.plan("//person")
        assert engine.plan_cache_hits == 0
        assert engine.plan_cache_misses == 2

    def test_metrics_carry_per_query_counts(self, engine):
        first = engine.evaluate("//person")
        assert first.metrics.plan_cache_misses == 1
        assert first.metrics.plan_cache_hits == 0
        second = engine.evaluate("//person")
        assert second.metrics.plan_cache_hits == 1
        assert second.metrics.plan_cache_misses == 0


class TestEpochInvalidation:
    def test_store_mutations_bump_epoch(self, store):
        epoch = store.epoch
        site = next(iter(store.node_index.scan(None, None))).key
        people = site.child(0)
        store.insert_element(people, "person")
        assert store.epoch > epoch

    def test_insert_invalidates_plan_cache(self, engine, store):
        engine.plan("//person")
        site = next(iter(store.node_index.scan(None, None))).key
        store.insert_element(site.child(0), "person")
        engine.plan("//person")
        assert engine.plan_cache_misses == 2
        assert engine.plan_cache_hits == 0

    def test_live_insert_replans_with_new_statistics(self, engine, store):
        before = engine.evaluate("//person")
        assert len(before) == 2
        assert before.metrics.plan_cache_misses == 1

        plan, _trace = engine.plan("//person")
        engine.estimator.estimate(plan)
        step = plan.root.context_child
        assert step.cost.count == 2  # COUNT(person) from current statistics

        site = next(iter(store.node_index.scan(None, None))).key
        store.insert_element(site.child(0), "person", text="Cyd")

        after = engine.evaluate("//person")
        assert len(after) == 3  # the new node is visible immediately
        assert after.metrics.plan_cache_misses == 1  # re-planned, not cached

        plan, _trace = engine.plan("//person")
        engine.estimator.estimate(plan)
        step = plan.root.context_child
        assert step.cost.count == 3  # ... and against the new statistics

    def test_estimator_count_memo_hits_until_epoch_changes(self, engine, store):
        plan, _trace = engine.plan("//person/name")
        engine.estimator.estimate(plan)
        calls = store.metrics.count_calls
        engine.estimator.estimate(plan)  # same epoch: memoized, no index work
        assert store.metrics.count_calls == calls

        site = next(iter(store.node_index.scan(None, None))).key
        store.insert_element(site.child(0), "person")
        engine.estimator.estimate(plan)  # epoch changed: counts re-probed
        assert store.metrics.count_calls > calls

    def test_delete_also_invalidates(self, engine, store):
        engine.evaluate("//person")
        result = engine.evaluate("//person")
        assert result.metrics.plan_cache_hits == 1
        victim = max(result.keys)
        store.delete_subtree(victim)
        after = engine.evaluate("//person")
        assert after.metrics.plan_cache_misses == 1
        assert len(after) == 1


class TestPipelineKnobKeying:
    """The batched/block-size knobs are part of the plan-cache key.

    Plans memoize their block configuration (``_block_config_hint``);
    serving a plan cached under different pipeline knobs would replay a
    stale configuration.  Toggling either knob must therefore miss.
    """

    def test_toggling_batched_misses(self, engine):
        engine.plan("//person")
        engine.batched = False
        engine.plan("//person")
        assert (engine.plan_cache_hits, engine.plan_cache_misses) == (0, 2)
        engine.batched = True
        engine.plan("//person")
        assert engine.plan_cache_hits == 1  # original entry still cached

    def test_changing_block_size_misses(self, engine):
        engine.plan("//person")
        engine.block_size = 2
        engine.plan("//person")
        engine.block_size = 64
        engine.plan("//person")
        assert (engine.plan_cache_hits, engine.plan_cache_misses) == (0, 3)

    def test_executed_block_config_tracks_live_knobs(self, store, monkeypatch):
        """The config actually handed to execute_plan follows the knobs
        even when the expression was first planned under other knobs."""
        import repro.engine.engine as engine_module

        engine = VamanaEngine(store)
        seen = []
        real_execute = engine_module.execute_plan

        def spy(plan, store, context=None, **kwargs):
            seen.append(kwargs["block"])
            return real_execute(plan, store, context, **kwargs)

        monkeypatch.setattr(engine_module, "execute_plan", spy)
        engine.evaluate("//person")                    # batched, auto size
        engine.block_size = 3
        engine.evaluate("//person")                    # batched, pinned size
        engine.batched = False
        engine.evaluate("//person")                    # tuple-at-a-time
        assert seen[0].enabled
        assert (seen[1].enabled, seen[1].size) == (True, 3)
        assert not seen[2].enabled


class TestFusionKnobKeying:
    """The ``fused`` knob is part of the plan-cache key.

    A plan optimized with path fusion contains a ``FusedPathScanNode``
    the unfused pipeline must never be handed (and vice versa), so
    toggling the engine knob — or overriding it per query — must miss
    rather than serve the other configuration's plan.
    """

    def test_toggling_fused_misses(self, engine):
        engine.plan("//person/name")
        engine.fused = False
        engine.plan("//person/name")
        assert (engine.plan_cache_hits, engine.plan_cache_misses) == (0, 2)
        engine.fused = True
        engine.plan("//person/name")
        assert engine.plan_cache_hits == 1  # original entry still cached

    def test_per_query_override_is_part_of_the_key(self, engine):
        engine.plan("//person/name")               # engine default (fused)
        engine.plan("//person/name", fused=False)  # override: distinct entry
        assert (engine.plan_cache_hits, engine.plan_cache_misses) == (0, 2)
        engine.plan("//person/name", fused=True)   # same as the default entry
        engine.plan("//person/name")
        assert engine.plan_cache_hits == 2

    def test_override_plans_differ_in_shape(self, store):
        from repro.algebra.plan import FusedPathScanNode

        engine = VamanaEngine(store)
        fused_plan, _ = engine.plan("//node()//text()", fused=True)
        unfused_plan, _ = engine.plan("//node()//text()", fused=False)
        assert any(
            isinstance(node, FusedPathScanNode) for node in fused_plan.walk()
        )
        assert not any(
            isinstance(node, FusedPathScanNode) for node in unfused_plan.walk()
        )

    def test_unfused_engine_never_builds_fused_plans(self, store):
        from repro.algebra.plan import FusedPathScanNode

        engine = VamanaEngine(store, fused=False)
        plan, _ = engine.plan("//node()//text()")
        assert not any(
            isinstance(node, FusedPathScanNode) for node in plan.walk()
        )
        result = engine.evaluate("//node()//text()")
        assert result.metrics.plan_cache_hits == 1  # same key as plan() above
