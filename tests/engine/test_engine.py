"""VamanaEngine facade: evaluate, metrics, plan cache, value queries."""

from __future__ import annotations

import pytest

from repro.errors import PlanError, XPathSyntaxError
from repro.mass.flexkey import FlexKey
from repro.engine.engine import VamanaEngine


@pytest.fixture
def engine(small_store):
    return VamanaEngine(small_store)


class TestEvaluate:
    def test_basic_query(self, engine):
        result = engine.evaluate("//person")
        assert len(result) == 3
        assert result.expression == "//person"

    def test_results_in_document_order_distinct(self, engine):
        result = engine.evaluate("//watches/watch/ancestor::person")
        assert list(result.keys) == sorted(set(result.keys))
        assert len(result) == 2

    def test_optimize_flag(self, engine):
        default = engine.evaluate("//person/address", optimize=False)
        optimized = engine.evaluate("//person/address", optimize=True)
        assert default.key_set() == optimized.key_set()
        assert default.trace is None
        assert optimized.trace is not None

    def test_records_and_labels(self, engine):
        result = engine.evaluate("//person/name")
        labels = result.labels()
        assert len(labels) == 3
        assert all(label.startswith("<name>") for label in labels)

    def test_string_values(self, engine):
        values = engine.evaluate("//person/name").string_values()
        assert "Yung Flach" in values

    def test_custom_context(self, engine, small_store):
        person = engine.evaluate("//person").keys[0]
        result = engine.evaluate("name", context=person)
        assert result.string_values() == ["Alpha One"]

    def test_iteration_yields_keys(self, engine):
        for key in engine.evaluate("//name"):
            assert isinstance(key, FlexKey)

    def test_syntax_error_propagates(self, engine):
        with pytest.raises(XPathSyntaxError):
            engine.evaluate("//person[")

    def test_repr(self, engine):
        assert "VamanaEngine" in repr(engine)
        assert "QueryResult" in repr(engine.evaluate("//name"))


class TestMetrics:
    def test_tuples_returned(self, engine):
        result = engine.evaluate("//person")
        assert result.metrics.tuples_returned == 3

    def test_wall_time_positive(self, engine):
        assert engine.evaluate("//person").metrics.wall_seconds > 0

    def test_optimize_time_recorded(self, small_store):
        engine = VamanaEngine(small_store)
        result = engine.evaluate("//person/address", optimize=True)
        assert result.metrics.optimize_seconds > 0

    def test_raw_tuple_counter(self, engine):
        result = engine.evaluate("//watches/watch/ancestor::person", optimize=False)
        assert result.metrics.counters["raw_tuples"] == 3
        assert result.metrics.tuples_returned == 2

    def test_describe(self, engine):
        text = engine.evaluate("//person").metrics.describe()
        assert "tuples" in text and "ms" in text


class TestPlanCache:
    def test_cache_hit_returns_same_plan(self, engine):
        first, _trace1 = engine.plan("//person")
        second, _trace2 = engine.plan("//person")
        assert first is second

    def test_cache_distinguishes_optimize_flag(self, engine):
        optimized, _t1 = engine.plan("//person/address", optimize=True)
        default, _t2 = engine.plan("//person/address", optimize=False)
        assert optimized is not default

    def test_cache_eviction(self, small_store):
        engine = VamanaEngine(small_store, plan_cache_size=2)
        engine.plan("//a")
        engine.plan("//b")
        engine.plan("//c")
        assert len(engine._plan_cache) <= 2


class TestEvaluateValue:
    def test_count(self, engine):
        assert engine.evaluate_value("count(//person)") == 3.0

    def test_boolean(self, engine):
        assert engine.evaluate_value("count(//person) > 2") is True
        assert engine.evaluate_value("count(//person) > 3") is False

    def test_string(self, engine):
        assert engine.evaluate_value("concat('a', 'b')") == "ab"
        assert engine.evaluate_value("string(//person[2]/name)") == "Yung Flach"

    def test_arithmetic(self, engine):
        assert engine.evaluate_value("3 + 4 * 2") == 11.0

    def test_nodeset_expression_returns_keys(self, engine):
        keys = engine.evaluate_value("//person")
        assert len(keys) == 3

    def test_path_expression_inside_function(self, engine):
        assert engine.evaluate_value("sum(//price)") == pytest.approx(11.49)

    def test_compile_rejects_value_query(self, engine):
        with pytest.raises(PlanError):
            engine.compile("1 + 2")


class TestExplain:
    def test_explain_contains_costs(self, engine):
        text = engine.explain("//person/address")
        assert "COUNT=" in text and "OUT=" in text

    def test_explain_contains_trace(self, engine):
        text = engine.explain("//person/address", optimize=True)
        assert "optimization of" in text

    def test_explain_default_plan(self, engine):
        text = engine.explain("//person/address", optimize=False)
        assert "optimization of" not in text

    def test_explain_verify_appends_static_analysis(self, engine):
        text = engine.explain("//person/address", verify=True)
        assert "invariants: ok" in text
        assert "satisfiability:" in text
        assert "order=" in text  # per-operator inferred properties

    def test_explain_without_verify_omits_static_analysis(self, engine):
        text = engine.explain("//person/address")
        assert "invariants:" not in text
