"""QueryResult surface: records, labels, XML fragments, metrics."""

from __future__ import annotations

import pytest

from repro.engine.engine import VamanaEngine
from repro.mass.loader import load_xml


@pytest.fixture
def engine():
    return VamanaEngine(
        load_xml(
            "<site><person id='p0'><name>Ada &amp; co</name></person>"
            "<person id='p1'><name>Bob</name></person></site>"
        )
    )


def test_to_xml_fragments(engine):
    result = engine.evaluate("//person")
    fragments = result.to_xml()
    assert fragments[0] == '<person id="p0"><name>Ada &amp; co</name></person>'
    assert fragments[1] == '<person id="p1"><name>Bob</name></person>'


def test_to_xml_reparses(engine):
    for fragment in engine.evaluate("//person").to_xml():
        load_xml(fragment)  # must be well-formed


def test_to_xml_text_nodes_are_escaped_fragments(engine):
    fragments = engine.evaluate("//name/text()").to_xml()
    assert fragments == ["Ada &amp; co", "Bob"]


def test_records_iteration(engine):
    result = engine.evaluate("//name")
    names = [record.name for record in result.records()]
    assert names == ["name", "name"]


def test_len_iter_keyset(engine):
    result = engine.evaluate("//person")
    assert len(result) == 2
    assert len(list(result)) == 2
    assert result.key_set() == frozenset(result.keys)


def test_string_values_follow_document_order(engine):
    assert engine.evaluate("//name").string_values() == ["Ada & co", "Bob"]


def test_attribute_results(engine):
    result = engine.evaluate("//person/@id")
    assert result.string_values() == ["p0", "p1"]
    assert result.to_xml() == ["p0", "p1"]


def test_empty_result(engine):
    result = engine.evaluate("//missing")
    assert len(result) == 0
    assert result.to_xml() == []
    assert result.labels() == []
    assert result.metrics.tuples_returned == 0
