"""The public package surface: everything __all__ promises exists."""

from __future__ import annotations

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_end_to_end_through_public_api_only():
    store = repro.load_xml("<site><person><name>Ada</name></person></site>")
    engine = repro.VamanaEngine(store)
    result = engine.evaluate("//person/name")
    assert result.string_values() == ["Ada"]
    plan = repro.build_default_plan("//person")
    optimized, trace = repro.optimize_plan(plan, store)
    assert list(repro.execute_plan(optimized, store))


def test_exception_hierarchy():
    for name in (
        "XmlError",
        "XPathSyntaxError",
        "StorageError",
        "PlanError",
        "ExecutionError",
        "UnsupportedFeatureError",
        "DocumentTooLargeError",
    ):
        assert issubclass(getattr(repro, name), repro.ReproError)


def test_generator_exported():
    text = repro.generate_document(0.001, seed=1)
    assert text.startswith("<?xml")
    profile = repro.paper_profile()
    assert profile.persons(0.1) == 2550


def test_model_exports():
    assert repro.Axis.CHILD.value == "child"
    assert repro.NodeTest.name_test("a").name == "a"
    assert repro.NodeKind.ELEMENT.value == "element"
    assert repro.FlexKey.document().is_document()
