"""CLI tests (argument handling, commands, errors)."""

from __future__ import annotations

import pytest

from repro.cli import main

DOC = "<site><person id='p0'><name>Ada</name></person></site>"


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC, encoding="utf-8")
    return str(path)


class TestGenerate:
    def test_generate_by_factor(self, tmp_path, capsys):
        out = tmp_path / "auction.xml"
        assert main(["generate", "--factor", "0.001", "-o", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_by_megabytes(self, tmp_path):
        out = tmp_path / "auction.xml"
        assert main(["generate", "--megabytes", "0.1", "-o", str(out)]) == 0
        assert "<site>" in out.read_text()

    def test_generate_deterministic(self, tmp_path):
        first = tmp_path / "a.xml"
        second = tmp_path / "b.xml"
        main(["generate", "--factor", "0.001", "--seed", "7", "-o", str(first)])
        main(["generate", "--factor", "0.001", "--seed", "7", "-o", str(second)])
        assert first.read_text() == second.read_text()


class TestIndexAndStats:
    def test_index_round_trip(self, xml_file, tmp_path, capsys):
        store_path = tmp_path / "doc.mass"
        assert main(["index", xml_file, "-o", str(store_path)]) == 0
        assert store_path.exists()
        assert main(["stats", str(store_path)]) == 0
        output = capsys.readouterr().out
        assert "nodes" in output and "index heights" in output

    def test_stats_on_raw_xml(self, xml_file, capsys):
        assert main(["stats", xml_file]) == 0
        assert "elements" in capsys.readouterr().out


class TestQuery:
    def test_query_xml_file(self, xml_file, capsys):
        assert main(["query", xml_file, "//person/name"]) == 0
        assert "<name>" in capsys.readouterr().out

    def test_query_saved_store(self, xml_file, tmp_path, capsys):
        store_path = tmp_path / "doc.mass"
        main(["index", xml_file, "-o", str(store_path)])
        assert main(["query", str(store_path), "//name"]) == 0
        assert "<name>" in capsys.readouterr().out

    def test_query_xml_output(self, xml_file, capsys):
        assert main(["query", xml_file, "//person", "--xml"]) == 0
        assert "<person id=\"p0\"><name>Ada</name></person>" in capsys.readouterr().out

    def test_query_explain(self, xml_file, capsys):
        assert main(["query", xml_file, "//person/name", "--explain"]) == 0
        output = capsys.readouterr().out
        assert "R_1" in output and "COUNT=" in output

    def test_query_no_optimize(self, xml_file, capsys):
        assert main(["query", xml_file, "//person/name", "--no-optimize"]) == 0

    def test_query_limit(self, xml_file, capsys):
        assert main(["query", xml_file, "//*", "--limit", "1"]) == 0
        assert "more)" in capsys.readouterr().out

    def test_bad_xpath_fails_cleanly(self, xml_file, capsys):
        assert main(["query", xml_file, "//person["]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["query", "/nonexistent.xml", "//a"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_store_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.mass"
        bad.write_bytes(b"MASSgarbage-corrupt-file-....")
        assert main(["query", str(bad), "//a"]) == 1


class TestCheck:
    def test_check_satisfiable_query(self, capsys):
        assert main(["check", "//person/address"]) == 0
        output = capsys.readouterr().out
        assert "invariants: ok" in output
        assert "satisfiable" in output

    def test_check_unsatisfiable_query_exits_three(self, capsys):
        assert main(["check", "//nosuchtag"]) == 3
        output = capsys.readouterr().out
        assert "invariants: ok" in output
        assert "statically empty" in output

    def test_check_prints_operator_properties(self, capsys):
        assert main(["check", "//person/address"]) == 0
        output = capsys.readouterr().out
        assert "order=" in output and "distinct" in output

    def test_check_against_document_uses_its_schema(self, tmp_path, capsys):
        # A non-XMark vocabulary forces the names-only fallback: known
        # names pass in any structure, unknown names are still pruned.
        path = tmp_path / "library.xml"
        path.write_text("<library><book><title>SICP</title></book></library>",
                        encoding="utf-8")
        assert main(["check", "/library/book", "--input", str(path)]) == 0
        assert main(["check", "//nosuchtag", "--input", str(path)]) == 3

    def test_check_bad_xpath_fails_cleanly(self, capsys):
        assert main(["check", "//person["]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestVerifyRulesCommand:
    def _fake_report(self, ok):
        from repro.analysis.tv.runner import ObligationFailure, VerifyReport

        report = VerifyReport(mode="quick", documents=3, obligations=2, checked=6)
        if not ok:
            report.failures.append(
                ObligationFailure(
                    rule="broken-pushdown",
                    expression="//people/person[1]",
                    site="step",
                    document="<site/>",
                    discrepancies=("pre vs post: 1 vs 0 keys",),
                )
            )
        return report

    def test_clean_run_exits_zero(self, capsys, monkeypatch):
        import repro.analysis.tv.runner as runner

        monkeypatch.setattr(
            runner, "verify_rules", lambda **kwargs: self._fake_report(True)
        )
        assert main(["verify-rules", "--quick"]) == 0
        assert "2 obligations" in capsys.readouterr().out

    def test_failures_exit_nonzero(self, capsys, monkeypatch):
        import repro.analysis.tv.runner as runner

        monkeypatch.setattr(
            runner, "verify_rules", lambda **kwargs: self._fake_report(False)
        )
        assert main(["verify-rules"]) == 1
        assert "FAIL broken-pushdown" in capsys.readouterr().out

    def test_quick_and_exhaustive_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify-rules", "--quick", "--exhaustive"])

    def test_flags_reach_the_runner(self, monkeypatch):
        import repro.analysis.tv.runner as runner

        seen = {}

        def spy(**kwargs):
            seen.update(kwargs)
            return self._fake_report(True)

        monkeypatch.setattr(runner, "verify_rules", spy)
        assert main(["verify-rules", "--exhaustive", "--seed", "3",
                     "--no-shrink"]) == 0
        assert seen == {"quick": False, "seed": 3, "shrink": False}
