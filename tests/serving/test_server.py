"""QueryServer: evaluation, updates, limits, shedding, fault behaviour."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    BudgetExceededError,
    QueryTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    TransientStorageError,
)
from repro.mass.loader import load_xml
from repro.resilience.faults import FaultInjector
from repro.serving.server import QueryServer

DOC = """<site>
<people>
<person><name>Ada</name><age>36</age></person>
<person><name>Bob</name><age>41</age></person>
<person><name>Cyd</name></person>
</people>
<items><item><price>7</price></item><item><price>9</price></item></items>
</site>"""


def make_server(**options) -> QueryServer:
    return QueryServer(load_xml(DOC, name="serve-test"), **options)


def add_person(label: str):
    def mutate(store):
        people = store.root_element().key.child(0)
        key = store.insert_element(people, "person")
        store.insert_element(key, "name", text=label)

    return mutate


class TestEvaluate:
    def test_basic_roundtrip(self):
        with make_server(workers=2) as server:
            outcome = server.evaluate("//person/name")
            assert outcome.ok and outcome.error is None
            assert len(outcome.result) == 3
            assert outcome.epoch == server.manager.current_epoch

    def test_many_concurrent_clients_all_complete(self):
        with make_server(workers=2, max_queue_depth=64) as server:
            futures = [server.submit("//person[age]/name") for _ in range(32)]
            outcomes = [future.result(timeout=30) for future in futures]
            assert all(outcome.ok for outcome in outcomes)
            assert {len(outcome.result) for outcome in outcomes} == {2}
        stats = server.stats()
        assert stats["snapshots"]["pinned"] == 0
        assert stats["requests"]["completed"] == 32

    def test_syntax_error_is_captured_not_raised(self):
        with make_server() as server:
            outcome = server.evaluate("///")
            assert not outcome.ok
            assert outcome.error_type == "XPathSyntaxError"

    def test_on_error_raise_propagates_through_future(self):
        with make_server() as server:
            with pytest.raises(Exception) as info:
                server.evaluate("///", on_error="raise")
            assert type(info.value).__name__ == "XPathSyntaxError"


class TestUpdates:
    def test_update_visible_to_later_queries(self):
        with make_server() as server:
            assert len(server.evaluate("//person").result) == 3
            epoch = server.apply_update(add_person("Eve"))
            outcome = server.evaluate("//person")
            assert outcome.epoch == epoch
            assert len(outcome.result) == 4

    def test_reader_admitted_before_publish_sees_old_epoch(self):
        with make_server() as server:
            with server.manager.acquire() as pinned:
                server.apply_update(add_person("Eve"))
                assert len(pinned.engine.evaluate("//person")) == 3
            assert len(server.evaluate("//person").result) == 4

    def test_update_failure_counted_and_raised(self):
        injector = FaultInjector(
            seed=3, rates={"writer.publish": 1.0}, max_failures=1
        )
        server = QueryServer(
            load_xml(DOC), workers=1, fault_injector=injector
        )
        try:
            with pytest.raises(TransientStorageError):
                server.apply_update(add_person("Eve"))
            epoch = server.apply_update(add_person("Eve"))  # retry succeeds
            assert epoch == server.manager.current_epoch
            stats = server.stats()["requests"]
            assert stats["update_failures"] == 1
            assert stats["updates_applied"] == 1
        finally:
            server.close()

    def test_apply_update_pinned_returns_owned_pin(self):
        with make_server() as server:
            epoch, pinned = server.apply_update_pinned(add_person("Eve"))
            try:
                assert pinned.epoch == epoch
                assert len(pinned.engine.evaluate("//person")) == 4
            finally:
                pinned.release()
            assert server.manager.pinned() == 0


class TestLimits:
    def test_result_cap_flags_partial(self):
        with make_server() as server:
            outcome = server.evaluate("//person", max_results=1)
            assert not outcome.ok
            assert isinstance(outcome.error, BudgetExceededError)
            assert outcome.partial

    def test_deadline_expired_in_queue_never_touches_store(self):
        # A server whose single worker is blocked: the second request's
        # deadline expires while it waits.
        release = threading.Event()
        with make_server(workers=1, max_queue_depth=4) as server:
            blocker = server.submit("//person")  # occupies the worker briefly
            blocker.result(timeout=30)
            # Stuff the queue with an already-expired deadline.
            outcome = server.evaluate("//person", timeout_ms=0.0001)
            assert not outcome.ok
            assert isinstance(outcome.error, QueryTimeoutError)
            assert outcome.partial
        release.set()

    def test_default_limits_applied_per_request(self):
        with make_server(default_max_results=1) as server:
            outcome = server.evaluate("//person")
            assert isinstance(outcome.error, BudgetExceededError)
            # Per-request override wins.
            assert server.evaluate("//person", max_results=100).ok


class TestOverload:
    def test_queue_full_rejects_synchronously_with_hint(self):
        # Depth 0 rejects every submission before it ever reaches a worker.
        with make_server(workers=1, max_queue_depth=0) as server:
            with pytest.raises(ServerOverloadedError) as info:
                server.submit("//person")
            assert info.value.retry_after_s > 0
            assert server.stats()["requests"]["shed"] == 1

    def test_queue_overflow_rejects_excess_submissions(self):
        server = make_server(workers=1, max_queue_depth=1)
        try:
            futures = []
            saw_reject = False
            for _ in range(50):
                try:
                    futures.append(server.submit("//person"))
                except ServerOverloadedError as error:
                    assert error.retry_after_s > 0
                    saw_reject = True
                    break
            outcomes = [future.result(timeout=30) for future in futures]
            assert all(outcome.ok for outcome in outcomes)
            assert saw_reject
            assert server.stats()["requests"]["shed"] >= 1
        finally:
            server.close()

    def test_cost_shedding_rejects_expensive_query_under_pressure(self):
        server = make_server(
            workers=1, max_queue_depth=8, shed_cost_limit=1
        )
        try:
            # Saturate: with every plan over the limit, shedding only
            # triggers when someone else is waiting.
            futures = []
            for _ in range(12):
                try:
                    futures.append(server.submit("//person"))
                except ServerOverloadedError:
                    pass
            outcomes = [future.result(timeout=30) for future in futures]
            shed = [
                outcome
                for outcome in outcomes
                if isinstance(outcome.error, ServerOverloadedError)
            ]
            assert shed, "expected at least one cost-shed outcome"
            assert all(outcome.error.retry_after_s > 0 for outcome in shed)
        finally:
            server.close()
        assert server.stats()["snapshots"]["pinned"] == 0

    def test_degrade_policy_clamps_page_budget(self):
        server = make_server(
            workers=1,
            max_queue_depth=8,
            shed_cost_limit=1,
            shed_policy="degrade",
            degrade_page_budget=1,
        )
        try:
            futures = []
            for _ in range(12):
                try:
                    futures.append(server.submit("//person"))
                except ServerOverloadedError:
                    pass
            outcomes = [future.result(timeout=30) for future in futures]
            degraded = [outcome for outcome in outcomes if outcome.degraded]
            assert degraded, "expected degraded outcomes under pressure"
            # A degraded request either completed within the clamped
            # budget or failed with the typed budget error — flagged
            # partial either way it failed.
            for outcome in degraded:
                if not outcome.ok:
                    assert isinstance(outcome.error, BudgetExceededError)
                    assert outcome.partial
        finally:
            server.close()


class TestFaults:
    def test_worker_crash_surfaces_typed_error_and_releases_pin(self):
        injector = FaultInjector(
            seed=5, rates={"worker.crash": 1.0}, max_failures=1
        )
        server = QueryServer(load_xml(DOC), workers=1, fault_injector=injector)
        try:
            outcome = server.evaluate("//person")
            assert not outcome.ok
            assert isinstance(outcome.error, TransientStorageError)
            assert server.stats()["requests"]["worker_crashes"] == 1
            # The server survives and the pin drained.
            assert server.evaluate("//person").ok
            assert server.manager.pinned() == 0
        finally:
            server.close()

    def test_release_fault_turns_success_into_typed_error(self):
        injector = FaultInjector(
            seed=5, rates={"snapshot.release": 1.0}, max_failures=1
        )
        server = QueryServer(load_xml(DOC), workers=1, fault_injector=injector)
        try:
            outcome = server.evaluate("//person")
            assert not outcome.ok
            assert isinstance(outcome.error, TransientStorageError)
            assert server.stats()["requests"]["release_faults"] == 1
            assert server.manager.pinned() == 0
        finally:
            server.close()

    def test_acquire_fault_rejects_request_cleanly(self):
        injector = FaultInjector(
            seed=5, rates={"snapshot.acquire": 1.0}, max_failures=1
        )
        server = QueryServer(load_xml(DOC), workers=1, fault_injector=injector)
        try:
            outcome = server.evaluate("//person")
            assert not outcome.ok
            assert isinstance(outcome.error, TransientStorageError)
            assert server.manager.pinned() == 0
            assert server.evaluate("//person").ok
        finally:
            server.close()


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(self):
        server = make_server()
        server.close()
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit("//person")
        with pytest.raises(ServerClosedError):
            server.apply_update(add_person("Eve"))

    def test_close_drains_admitted_requests(self):
        server = make_server(workers=1, max_queue_depth=16)
        futures = [server.submit("//person") for _ in range(8)]
        server.close()
        outcomes = [future.result(timeout=30) for future in futures]
        assert all(outcome.ok for outcome in outcomes)

    def test_submit_racing_close_never_strands_a_future(self):
        # Regression: submit() used to re-check _closed and then enqueue
        # without holding the close lock, so a request admitted in that
        # window could land behind close()'s stop markers and its future
        # would never resolve.  Every submit must either raise
        # ServerClosedError or return a future that resolves.
        from repro.errors import ServerOverloadedError

        for _trial in range(3):
            server = make_server(workers=2, max_queue_depth=64)
            futures = []
            futures_lock = threading.Lock()
            hammers = 4
            barrier = threading.Barrier(hammers + 1)

            def hammer():
                barrier.wait()
                while True:
                    try:
                        future = server.submit("//person")
                    except ServerClosedError:
                        return
                    except ServerOverloadedError:
                        continue
                    with futures_lock:
                        futures.append(future)

            threads = [threading.Thread(target=hammer) for _ in range(hammers)]
            for thread in threads:
                thread.start()
            barrier.wait()
            server.close()
            for thread in threads:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in threads)
            for future in futures:
                outcome = future.result(timeout=5)  # raises if stranded
                assert outcome is not None
            assert server.manager.pinned() == 0

    def test_stats_shape(self):
        with make_server() as server:
            server.evaluate("//person")
            stats = server.stats()
        assert stats["workers"] >= 1
        assert stats["requests"]["completed"] == 1
        assert stats["admission"]["admitted"] == 1
        assert stats["snapshots"]["acquires"] == stats["snapshots"]["releases"]
