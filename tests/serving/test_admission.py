"""Admission control: queue depth, pressure, retry hints, cost shedding."""

from __future__ import annotations

import pytest

from repro.errors import ServerOverloadedError
from repro.serving.admission import ADMIT, DEGRADE, AdmissionController


class TestQueueDepth:
    def test_enqueue_until_full_then_rejects(self):
        controller = AdmissionController(max_concurrency=2, max_queue_depth=2)
        controller.enqueue()
        controller.enqueue()
        with pytest.raises(ServerOverloadedError) as info:
            controller.enqueue()
        assert info.value.retry_after_s > 0
        assert controller.stats()["queue_rejections"] == 1

    def test_start_frees_queue_slot(self):
        controller = AdmissionController(max_concurrency=2, max_queue_depth=1)
        controller.enqueue()
        controller.start()
        controller.enqueue()  # slot freed by start()
        assert controller.queued == 1
        assert controller.active == 1

    def test_zero_depth_rejects_everything(self):
        controller = AdmissionController(max_concurrency=1, max_queue_depth=0)
        with pytest.raises(ServerOverloadedError):
            controller.enqueue()


class TestRetryHints:
    def test_hint_tracks_ewma_service_time_and_backlog(self):
        controller = AdmissionController(max_concurrency=1, max_queue_depth=8)
        for _ in range(3):
            controller.enqueue()
            controller.start()
            controller.finish(0.1)
        # EWMA converged near 0.1s; empty backlog => ~one service time.
        hint = controller.retry_after_s()
        assert 0.05 <= hint <= 0.2
        controller.enqueue()
        controller.enqueue()
        assert controller.retry_after_s() > hint  # backlog raises the hint

    def test_hint_has_a_floor_without_history(self):
        controller = AdmissionController(
            max_concurrency=1, max_queue_depth=1, min_retry_after_s=0.025
        )
        assert controller.retry_after_s() == 0.025


class TestPressure:
    def test_idle_is_not_under_pressure(self):
        controller = AdmissionController(max_concurrency=2, max_queue_depth=4)
        assert not controller.under_pressure()

    def test_all_workers_busy_is_pressure(self):
        controller = AdmissionController(max_concurrency=1, max_queue_depth=4)
        controller.enqueue()
        controller.start()
        assert controller.under_pressure()

    def test_excluding_discounts_the_assessing_request(self):
        controller = AdmissionController(max_concurrency=1, max_queue_depth=4)
        controller.enqueue()
        controller.start()
        # From inside the only running request: no *other* load.
        assert not controller.under_pressure(excluding=1)
        controller.enqueue()
        assert controller.under_pressure(excluding=1)  # someone is waiting


class TestCostShedding:
    def _pressured(self, **options) -> AdmissionController:
        controller = AdmissionController(
            max_concurrency=1, max_queue_depth=4, **options
        )
        controller.enqueue()
        controller.start()
        return controller

    def test_no_limit_admits_everything(self):
        controller = self._pressured()
        assert controller.assess_cost(10**9) == ADMIT

    def test_cheap_plans_admitted_even_under_pressure(self):
        controller = self._pressured(shed_cost_limit=100)
        assert controller.assess_cost(100) == ADMIT

    def test_expensive_plan_admitted_when_idle(self):
        controller = AdmissionController(
            max_concurrency=2, max_queue_depth=4, shed_cost_limit=100
        )
        assert controller.assess_cost(101) == ADMIT

    def test_expensive_plan_rejected_under_pressure(self):
        controller = self._pressured(shed_cost_limit=100)
        with pytest.raises(ServerOverloadedError, match="cost 101"):
            controller.assess_cost(101)
        assert controller.stats()["cost_rejections"] == 1

    def test_degrade_policy_clamps_instead_of_rejecting(self):
        controller = self._pressured(
            shed_cost_limit=100, shed_policy="degrade"
        )
        assert controller.assess_cost(101) == DEGRADE
        assert controller.stats()["degraded"] == 1

    def test_unknown_cost_admitted(self):
        controller = self._pressured(shed_cost_limit=100)
        assert controller.assess_cost(None) == ADMIT


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(shed_policy="panic")
