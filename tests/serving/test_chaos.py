"""Seeded chaos stress suite: 64 readers vs 1 writer under fault injection."""

from __future__ import annotations

import pytest

from repro.serving.chaos import (
    CHAOS_EXPRESSIONS,
    DEFAULT_FAULT_RATES,
    ChaosConfig,
    run_chaos,
)


class TestChaosSwarm:
    def test_full_swarm_holds_all_invariants(self):
        report = run_chaos(ChaosConfig(seed=0, readers=64, writer_batches=6))
        assert report.ok, report.summary()
        assert report.requests >= 64
        assert report.successes > 0
        assert report.epochs_published  # the writer actually got through
        # Faults genuinely fired — otherwise the chaos run proves nothing.
        assert sum(report.injector_failures.values()) > 0

    @pytest.mark.parametrize("seed", [1, 7])
    def test_other_seeds_also_hold(self, seed):
        report = run_chaos(
            ChaosConfig(
                seed=seed,
                readers=16,
                queries_per_reader=2,
                writer_batches=4,
            )
        )
        assert report.ok, report.summary()

    def test_repeated_runs_stay_invariant_clean(self):
        # The injector's decision *sequence* is seeded, but thread
        # interleaving decides which site the k-th access lands on — so
        # only the invariants (not per-site tallies) are stable.
        config = ChaosConfig(seed=3, readers=8, queries_per_reader=2, writer_batches=3)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.ok, first.summary()
        assert second.ok, second.summary()
        for report in (first, second):
            assert set(report.injector_failures) <= set(config.fault_rates)

    def test_fault_free_run_sheds_and_errors_nothing(self):
        report = run_chaos(
            ChaosConfig(
                seed=2,
                readers=8,
                queries_per_reader=2,
                writer_batches=3,
                fault_rates={},
                max_queue_depth=64,
            )
        )
        assert report.ok, report.summary()
        assert sum(report.injector_failures.values()) == 0
        assert report.failed_batches == 0
        assert report.successes == report.requests

    def test_config_surface_matches_issue(self):
        config = ChaosConfig()
        assert config.readers == 64
        assert set(config.fault_rates) == set(DEFAULT_FAULT_RATES) == {
            "snapshot.acquire",
            "snapshot.release",
            "writer.publish",
            "worker.crash",
        }
        assert config.expressions == CHAOS_EXPRESSIONS


class TestInjectedClock:
    """The chaos config's clock threads through to the server's timing."""

    def test_default_clock_is_monotonic(self):
        import time

        assert ChaosConfig().clock is time.monotonic

    def test_stuck_clock_reaches_the_server_metrics(self):
        # With a frozen clock every queued/service interval measures 0.0;
        # non-zero averages would mean the server fell back to a real
        # clock somewhere instead of the injected one.
        report = run_chaos(
            ChaosConfig(
                seed=5,
                readers=4,
                queries_per_reader=2,
                writer_batches=1,
                fault_rates={},
                clock=lambda: 0.0,
            )
        )
        assert report.ok, report.summary()
        requests = report.server_stats["requests"]
        assert requests["completed"] > 0
        assert requests["queued_ms_avg"] == 0.0
        assert requests["service_ms_avg"] == 0.0
