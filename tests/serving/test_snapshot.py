"""Epoch-snapshot isolation: freezing, pinning, publish, reclamation."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotError, StorageError, TransientStorageError
from repro.mass.loader import load_xml
from repro.resilience.faults import FaultInjector
from repro.serving.snapshot import SnapshotManager

DOC = """<site>
<person><name>Ada</name></person>
<person><name>Bob</name></person>
</site>"""


@pytest.fixture
def manager():
    return SnapshotManager(load_xml(DOC, name="snap"))


def add_person(label: str):
    def mutate(store):
        key = store.insert_element(store.root_element().key, "person")
        store.insert_element(key, "name", text=label)

    return mutate


class TestFreezing:
    def test_managed_store_rejects_direct_mutation(self, manager):
        with manager.acquire() as snapshot:
            with pytest.raises(StorageError, match="frozen"):
                snapshot.store.insert_element(
                    snapshot.store.root_element().key, "x"
                )

    def test_frozen_tree_rejects_insert_delete_bulkload(self, manager):
        with manager.acquire() as snapshot:
            tree = snapshot.store.node_index.tree
            record = next(snapshot.store.node_index.scan(None, None))
            with pytest.raises(StorageError, match="frozen"):
                tree.insert(record.key, record)
            with pytest.raises(StorageError, match="frozen"):
                tree.delete(record.key)
            with pytest.raises(StorageError, match="frozen"):
                tree.bulk_load([])

    def test_reads_still_work_on_frozen_store(self, manager):
        with manager.acquire() as snapshot:
            result = snapshot.engine.evaluate("//person/name")
            assert len(result) == 2


class TestPinning:
    def test_acquire_release_roundtrip(self, manager):
        snapshot = manager.acquire()
        try:
            assert manager.pinned() == 1
        finally:
            snapshot.release()
        assert manager.pinned() == 0
        assert manager.stats()["acquires"] == manager.stats()["releases"] == 1

    def test_double_release_raises(self, manager):
        snapshot = manager.acquire()
        try:
            pass
        finally:
            snapshot.release()
        with pytest.raises(SnapshotError):
            snapshot.release()

    def test_use_after_release_raises(self, manager):
        with manager.acquire() as snapshot:
            pass
        with pytest.raises(SnapshotError):
            snapshot.store
        with pytest.raises(SnapshotError):
            snapshot.engine
        # The epoch stays readable for bookkeeping/reporting.
        assert isinstance(snapshot.epoch, int)

    def test_context_manager_releases_on_error(self, manager):
        with pytest.raises(RuntimeError):
            with manager.acquire():
                raise RuntimeError("boom")
        assert manager.pinned() == 0


class TestPublish:
    def test_publish_bumps_epoch_and_is_visible_to_new_readers(self, manager):
        before = manager.current_epoch
        epoch = manager.publish(add_person("Eve"))
        assert epoch > before
        with manager.acquire() as snapshot:
            assert snapshot.epoch == epoch
            assert len(snapshot.engine.evaluate("//person")) == 3

    def test_pinned_reader_keeps_old_version_across_publish(self, manager):
        with manager.acquire() as old:
            manager.publish(add_person("Eve"))
            # The pinned snapshot still answers at its own epoch.
            assert len(old.engine.evaluate("//person")) == 2
            assert manager.live_versions() == 2
        # Releasing the last pin reclaims the retired version.
        assert manager.live_versions() == 1
        assert manager.stats()["reclaimed"] >= 1

    def test_unpinned_old_version_reclaimed_immediately(self, manager):
        manager.publish(add_person("Eve"))
        assert manager.live_versions() == 1

    def test_noop_mutation_publishes_nothing(self, manager):
        before = manager.stats()
        epoch = manager.publish(lambda store: None)
        after = manager.stats()
        assert epoch == before["epoch"] == after["epoch"]
        assert after["publishes"] == before["publishes"]
        assert after["noop_publishes"] == before["noop_publishes"] + 1

    def test_epochs_strictly_monotone(self, manager):
        epochs = [manager.publish(add_person(f"p{i}")) for i in range(4)]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == 4

    def test_failing_mutation_keeps_old_version(self, manager):
        before = manager.current_epoch

        def exploding(store):
            store.insert_element(store.root_element().key, "person")
            raise StorageError("mid-batch crash")

        with pytest.raises(StorageError):
            manager.publish(exploding)
        assert manager.current_epoch == before
        with manager.acquire() as snapshot:
            assert len(snapshot.engine.evaluate("//person")) == 2

    def test_publish_pinned_hands_ownership_to_caller(self, manager):
        epoch, pinned = manager.publish_pinned(add_person("Eve"))
        try:
            assert pinned is not None and pinned.epoch == epoch
            assert manager.pinned() == 1
        finally:
            pinned.release()
        assert manager.pinned() == 0


class TestFaultSites:
    def test_acquire_fault_rejects_without_leaking_a_pin(self):
        injector = FaultInjector(seed=1, rates={"snapshot.acquire": 1.0})
        manager = SnapshotManager(load_xml(DOC), fault_injector=injector)
        with pytest.raises(TransientStorageError):
            manager.acquire()
        assert manager.pinned() == 0
        assert manager.stats()["acquires"] == 0

    def test_release_fault_surfaces_but_refcount_drains(self):
        injector = FaultInjector(seed=1, rates={"snapshot.release": 1.0})
        manager = SnapshotManager(load_xml(DOC), fault_injector=injector)
        snapshot = manager.acquire()
        with pytest.raises(TransientStorageError):
            snapshot.release()
        assert manager.pinned() == 0
        assert manager.stats()["releases"] == 1

    def test_publish_fault_keeps_old_epoch_visible(self):
        injector = FaultInjector(seed=1, rates={"writer.publish": 1.0})
        manager = SnapshotManager(load_xml(DOC), fault_injector=injector)
        before = manager.current_epoch
        with pytest.raises(TransientStorageError):
            manager.publish(add_person("Eve"))
        assert manager.current_epoch == before
        assert manager.stats()["failed_publishes"] == 1
        with manager.acquire() as snapshot:
            assert len(snapshot.engine.evaluate("//person")) == 2

    def test_publish_retry_succeeds_after_transient_fault(self):
        injector = FaultInjector(
            seed=1, rates={"writer.publish": 1.0}, max_failures=1
        )
        manager = SnapshotManager(load_xml(DOC), fault_injector=injector)
        with pytest.raises(TransientStorageError):
            manager.publish(add_person("Eve"))
        epoch = manager.publish(add_person("Eve"))
        assert epoch == manager.current_epoch
