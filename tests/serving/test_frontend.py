"""TCP and asyncio front ends over the serving core."""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.errors import ServerOverloadedError, XPathSyntaxError
from repro.mass.loader import load_xml
from repro.serving.frontend import (
    AsyncFrontend,
    TcpFrontend,
    error_to_wire,
    outcome_to_wire,
    parse_request_line,
)
from repro.serving.server import QueryServer

DOC = """<site>
<person><name>Ada</name></person>
<person><name>Bob</name></person>
</site>"""


@pytest.fixture
def server():
    with QueryServer(load_xml(DOC, name="frontend"), workers=2) as instance:
        yield instance


class TestWireFormat:
    def test_parse_bare_expression(self):
        assert parse_request_line("  //person \n") == {"xpath": "//person"}

    def test_parse_json_request(self):
        body = parse_request_line('{"xpath": "//person", "timeout_ms": 50}')
        assert body == {"xpath": "//person", "timeout_ms": 50}

    def test_parse_json_without_xpath_rejected(self):
        with pytest.raises(ValueError):
            parse_request_line('{"query": "//person"}')

    def test_ok_outcome_wire_shape(self, server):
        response = outcome_to_wire(server.evaluate("//person/name"))
        assert response["ok"] and response["count"] == 2
        assert response["labels"] and not response["truncated_labels"]
        assert response["epoch"] == server.manager.current_epoch

    def test_error_outcome_carries_type_and_message(self, server):
        response = outcome_to_wire(server.evaluate("///"))
        assert not response["ok"]
        assert response["error"] == "XPathSyntaxError"
        assert response["message"]

    def test_overload_error_carries_retry_hint(self):
        wire = error_to_wire(ServerOverloadedError("queue full", retry_after_s=0.5))
        assert wire["error"] == "ServerOverloadedError"
        assert wire["retry_after_s"] == 0.5


class TestTcp:
    def test_line_protocol_roundtrip(self, server):
        with TcpFrontend(server, port=0) as frontend:
            host, port = frontend.address
            with socket.create_connection((host, port), timeout=10) as sock:
                stream = sock.makefile("rw", encoding="utf-8")
                stream.write("//person/name\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] and response["count"] == 2
                stream.write(
                    json.dumps({"xpath": "//person", "max_results": 1}) + "\n"
                )
                stream.flush()
                response = json.loads(stream.readline())
                assert not response["ok"]
                assert response["error"] == "BudgetExceededError"
                assert response["partial"]

    def test_stats_and_bad_request(self, server):
        with TcpFrontend(server, port=0) as frontend:
            host, port = frontend.address
            with socket.create_connection((host, port), timeout=10) as sock:
                stream = sock.makefile("rw", encoding="utf-8")
                stream.write("!stats\n")
                stream.flush()
                stats = json.loads(stream.readline())
                assert stats["snapshots"]["epoch"] == server.manager.current_epoch
                stream.write('{"no": "xpath"}\n')
                stream.flush()
                response = json.loads(stream.readline())
                assert response["error"] == "BadRequest"

    def test_multiple_connections_share_one_pool(self, server):
        with TcpFrontend(server, port=0) as frontend:
            host, port = frontend.address
            responses = []
            for _ in range(4):
                with socket.create_connection((host, port), timeout=10) as sock:
                    stream = sock.makefile("rw", encoding="utf-8")
                    stream.write("//person\n")
                    stream.flush()
                    responses.append(json.loads(stream.readline()))
            assert all(response["ok"] for response in responses)
        assert server.stats()["requests"]["completed"] >= 4


class TestAsync:
    def test_await_evaluate(self, server):
        async def main():
            frontend = AsyncFrontend(server)
            outcome = await frontend.evaluate("//person/name")
            return outcome

        outcome = asyncio.run(main())
        assert outcome.ok and len(outcome.result) == 2

    def test_gather_mixes_outcomes_and_typed_rejections(self, server):
        async def main():
            frontend = AsyncFrontend(server)
            return await frontend.gather(
                ["//person", "//person/name", "///"]
            )

        results = asyncio.run(main())
        assert len(results) == 3
        assert results[0].ok and results[1].ok
        assert results[2].error_type == "XPathSyntaxError"

    def test_on_error_raise_surfaces_inside_coroutine(self, server):
        async def main():
            frontend = AsyncFrontend(server)
            await frontend.evaluate("///", on_error="raise")

        with pytest.raises(XPathSyntaxError):
            asyncio.run(main())
