"""The chaos swarm under the dynamic race detector.

The shipped serving stack must come out clean; deleting either of two
load-bearing locks (via the ``sabotage`` seam and :class:`NullLock`)
must produce at least one drained-lockset report.  Together with the
static mutant kills in ``tests/analysis/test_concurrency_static.py``
this proves both prongs actually detect the bugs they claim to.
"""

from __future__ import annotations

import pytest

from repro.analysis.concurrency import NullLock
from repro.serving.chaos import ChaosConfig, run_chaos


def _small_config(seed: int = 3) -> ChaosConfig:
    # No fault injection: these runs isolate lock discipline, not the
    # typed-error paths (test_chaos covers those).
    return ChaosConfig(
        seed=seed,
        readers=8,
        queries_per_reader=2,
        writer_batches=2,
        workers=2,
        fault_rates={},
    )


class TestShippedTreeIsRaceFree:
    def test_chaos_swarm_detects_no_races(self):
        report = run_chaos(_small_config(), race_detect=True)
        assert report.races == [], "\n".join(report.races)
        assert report.ok, report.summary()

    def test_report_without_detection_has_no_races_field_noise(self):
        report = run_chaos(_small_config())
        assert report.races == []
        assert report.ok, report.summary()


class TestDynamicMutantKills:
    def test_deleting_the_snapshot_manager_lock_is_caught(self):
        def drop_snapshot_lock(server):
            server.manager._lock = NullLock()

        report = run_chaos(
            _small_config(), race_detect=True, sabotage=drop_snapshot_lock
        )
        assert report.races, "detector failed to kill the snapshot-lock mutant"
        assert not report.ok
        assert any(
            "SnapshotManager" in race or "StoreVersion" in race
            for race in report.races
        ), "\n".join(report.races)

    def test_deleting_the_plan_cache_lock_is_caught(self):
        def drop_plan_lock(server):
            with server.manager.acquire() as snapshot:
                snapshot.engine._plan_lock = NullLock()

        report = run_chaos(
            _small_config(), race_detect=True, sabotage=drop_plan_lock
        )
        assert report.races, "detector failed to kill the plan-cache mutant"
        assert not report.ok
        assert any("VamanaEngine" in race for race in report.races), \
            "\n".join(report.races)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_snapshot_lock_mutant_dies_across_seeds(self, seed):
        def drop_snapshot_lock(server):
            server.manager._lock = NullLock()

        report = run_chaos(
            _small_config(seed), race_detect=True, sabotage=drop_snapshot_lock
        )
        assert report.races, f"mutant survived seed {seed}"
