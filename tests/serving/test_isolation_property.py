"""Property test: concurrent reads are byte-identical to serial runs.

For a seeded schedule of mutations, every result a concurrent reader
obtains from a pinned :class:`~repro.serving.StoreSnapshot` must match,
key for key (``FlexKey.sort_bytes``), a serial evaluation of the same
expression against a store that applied the same mutation prefix with no
concurrency at all.  The comparison reuses the translation-validation
differential oracle's :func:`~repro.analysis.tv.oracle.compare_sequences`.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.analysis.tv.oracle import compare_sequences
from repro.engine.engine import VamanaEngine
from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.model import Axis, NodeTest
from repro.serving.snapshot import SnapshotManager

EXPRESSIONS = (
    "/site/people/person/name",
    "//person[age]/name",
    "//person[name]",
    "/site//name",
    "//item/price",
)

STATES = 6  # mutation prefixes: state 0 is the unmodified document


def base_document() -> str:
    people = "".join(
        f"<person><name>p{i}</name><age>{30 + i}</age></person>"
        for i in range(6)
    )
    items = "".join(f"<item><price>{i}</price></item>" for i in range(4))
    return f"<site><people>{people}</people><items>{items}</items></site>"


def make_mutation(step: int, seed: int):
    """A deterministic, clone-safe mutation for the given schedule step."""
    rng = random.Random(seed * 9_973 + step)
    delete = rng.random() < 0.3

    def mutate(store) -> None:
        people = store.root_element().key.child(0)
        person_keys = [
            record.key
            for record in store.axis_records(
                FlexKey.document(), Axis.DESCENDANT, NodeTest.name_test("person")
            )
        ]
        if delete and len(person_keys) > 3:
            store.delete_subtree(person_keys[1])
        else:
            key = store.insert_element(people, "person")
            store.insert_element(key, "name", text=f"new{step}")
            store.insert_element(key, "age", text=str(18 + step))

    return mutate


def serial_answers(seed: int) -> list[dict[str, list]]:
    """Expected key sequences per (state, expression), fully serial."""
    answers = []
    store = load_xml(base_document(), name=f"serial-{seed}")
    for state in range(STATES):
        if state > 0:
            make_mutation(state, seed)(store)
        engine = VamanaEngine(store.clone())
        answers.append(
            {
                expression: list(engine.evaluate(expression).keys)
                for expression in EXPRESSIONS
            }
        )
    return answers


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_concurrent_reads_match_serial_prefixes(seed):
    expected = serial_answers(seed)

    manager = SnapshotManager(load_xml(base_document(), name=f"conc-{seed}"))
    epoch_to_state = {manager.current_epoch: 0}
    observations: list[tuple[int, str, list]] = []
    observations_lock = threading.Lock()
    problems: list[str] = []
    stop = threading.Event()

    def reader(index: int) -> None:
        rng = random.Random(seed * 101 + index)
        while not stop.is_set():
            with manager.acquire() as snapshot:
                expression = rng.choice(EXPRESSIONS)
                keys = list(snapshot.engine.evaluate(expression).keys)
                with observations_lock:
                    observations.append((snapshot.epoch, expression, keys))

    readers = [
        threading.Thread(target=reader, args=(i,), name=f"prop-reader-{i}")
        for i in range(4)
    ]
    for thread in readers:
        thread.start()
    try:
        for state in range(1, STATES):
            epoch = manager.publish(make_mutation(state, seed))
            epoch_to_state[epoch] = state
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
            if thread.is_alive():
                problems.append(f"{thread.name} did not stop")

    assert not problems, problems
    assert len(epoch_to_state) == STATES
    assert observations, "readers never observed anything"

    for epoch, expression, keys in observations:
        state = epoch_to_state.get(epoch)
        assert state is not None, f"unpublished epoch {epoch} observed"
        divergence = compare_sequences(
            f"{expression} @ state {state}", keys, expected[state][expression]
        )
        assert divergence is None, divergence

    # Once all pins drain only the current version remains.
    assert manager.pinned() == 0
    assert manager.live_versions() == 1
    assert manager.stats()["acquires"] == manager.stats()["releases"]
