"""Shared fixtures: hand-written documents and cached XMark stores."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.xmark.generator import generate_document
from repro.xmlkit.dom import build_dom

#: A compact document exercising every node kind and the paper's element
#: vocabulary (person/name/address/province/watches/itemref/price).
SMALL_DOC = """<site>
<people>
<person id="person0"><name>Alpha One</name><emailaddress>a@x.example</emailaddress>
<address><street>1 Elm</street><city>Monroe</city><country>United States</country><province>Vermont</province><zipcode>12</zipcode></address>
</person>
<person id="person1"><name>Yung Flach</name><emailaddress>Flach@auth.gr</emailaddress>
<watches><watch open_auction="open_auction108"/><watch open_auction="open_auction94"/></watches>
</person>
<person id="person2"><name>Beta Two</name>
<address><street>2 Oak</street><city>Quincy</city><country>France</country><zipcode>99</zipcode></address>
<watches><watch open_auction="open_auction1"/></watches>
</person>
</people>
<closed_auctions>
<closed_auction><seller person="person0"/><buyer person="person2"/><itemref item="item3"/><price>9.99</price><date>01/15/2000</date></closed_auction>
<closed_auction><seller person="person1"/><buyer person="person0"/><itemref item="item7"/><price>1.50</price><date>02/20/2000</date></closed_auction>
</closed_auctions>
<!-- trailing comment -->
<?marker data?>
</site>"""


@pytest.fixture(scope="session")
def small_store():
    return load_xml(SMALL_DOC, name="small")


@pytest.fixture(scope="session")
def small_dom():
    return build_dom(SMALL_DOC)


@pytest.fixture(scope="session")
def small_text():
    return SMALL_DOC


@pytest.fixture(scope="session")
def xmark_text():
    """A small generated auction document (factor 0.005, deterministic)."""
    return generate_document(0.005, seed=42)


@pytest.fixture(scope="session")
def xmark_store(xmark_text):
    return load_xml(xmark_text, name="xmark-small")


@pytest.fixture(scope="session")
def xmark_dom(xmark_text):
    return build_dom(xmark_text)


@pytest.fixture(scope="session")
def paper_store():
    """The paper's '10 MB' document (factor 0.1): 2550 persons, 4825 names.

    Session-scoped because generating and indexing it takes a few seconds;
    tests must not mutate it.
    """
    return load_xml(generate_document(0.1, seed=42), name="xmark-paper")
