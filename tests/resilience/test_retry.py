"""Backoff schedule refinements: full jitter, deadline caps, server hints.

All tests run on fake clocks and injected sleeps — no real waiting.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ServerOverloadedError, TransientStorageError
from repro.resilience.guard import QueryGuard
from repro.resilience.retry import backoff_delay, with_retries


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def flaky(failures: int, error=None):
    """Fails ``failures`` times with a transient error, then returns "ok"."""
    state = {"left": failures}

    def fn() -> str:
        if state["left"] > 0:
            state["left"] -= 1
            raise error or TransientStorageError("flaky")
        return "ok"

    return fn


class TestBackoffDelay:
    def test_deterministic_without_jitter(self):
        delays = [
            backoff_delay(k, base_delay=0.01, multiplier=2.0, max_delay=1.0)
            for k in range(1, 5)
        ]
        assert delays == [0.01, 0.02, 0.04, 0.08]

    def test_jitter_draws_uniform_below_ceiling(self):
        rng = random.Random(7)
        for attempt in range(1, 8):
            ceiling = min(0.01 * 2.0 ** (attempt - 1), 1.0)
            delay = backoff_delay(
                attempt, 0.01, 2.0, 1.0, jitter=True, rng=rng
            )
            assert 0.0 <= delay <= ceiling

    def test_jitter_is_seeded(self):
        first = [
            backoff_delay(k, 0.01, 2.0, 1.0, jitter=True, rng=random.Random(3))
            for k in range(1, 4)
        ]
        second = [
            backoff_delay(k, 0.01, 2.0, 1.0, jitter=True, rng=random.Random(3))
            for k in range(1, 4)
        ]
        assert first == second

    def test_jitter_ceiling_respects_max_delay(self):
        rng = random.Random(1)
        for _ in range(50):
            assert backoff_delay(30, 0.01, 2.0, 0.05, jitter=True, rng=rng) <= 0.05


class TestJitteredRetries:
    def test_jittered_sleeps_stay_below_deterministic_schedule(self):
        slept: list[float] = []
        result = with_retries(
            flaky(3),
            attempts=4,
            base_delay=0.01,
            multiplier=2.0,
            max_delay=1.0,
            jitter=True,
            rng=random.Random(11),
            sleep=slept.append,
        )
        assert result == "ok"
        assert len(slept) == 3
        for delay, ceiling in zip(slept, [0.01, 0.02, 0.04]):
            assert 0.0 <= delay <= ceiling

    def test_same_seed_same_sleep_schedule(self):
        def run() -> list[float]:
            slept: list[float] = []
            with_retries(
                flaky(3),
                attempts=4,
                jitter=True,
                rng=random.Random(5),
                sleep=slept.append,
            )
            return slept

        assert run() == run()


class TestGuardDeadlineCap:
    def test_backoff_that_outlives_deadline_reraises_immediately(self):
        clock = FakeClock()
        guard = QueryGuard(timeout_ms=50, clock=clock)
        slept: list[float] = []
        # Second backoff would be 0.08s = 80ms > 50ms deadline remaining.
        with pytest.raises(TransientStorageError):
            with_retries(
                flaky(5),
                attempts=5,
                base_delay=0.08,
                multiplier=2.0,
                max_delay=1.0,
                sleep=slept.append,
                guard=guard,
            )
        assert slept == []  # no sleep was ever allowed

    def test_sleeps_allowed_while_budget_remains(self):
        clock = FakeClock()
        guard = QueryGuard(timeout_ms=1000, clock=clock)
        result = with_retries(
            flaky(2),
            attempts=3,
            base_delay=0.01,
            multiplier=2.0,
            max_delay=1.0,
            sleep=clock.sleep,
            guard=guard,
        )
        assert result == "ok"
        assert clock.now == pytest.approx(0.03)

    def test_total_retry_sleep_never_exceeds_deadline(self):
        clock = FakeClock()
        guard = QueryGuard(timeout_ms=100, clock=clock)
        with pytest.raises(TransientStorageError):
            with_retries(
                flaky(50),
                attempts=50,
                base_delay=0.03,
                multiplier=1.0,  # constant 30ms backoff
                max_delay=1.0,
                sleep=clock.sleep,
                guard=guard,
            )
        # 3 sleeps fit (90ms); the 4th would cross 100ms and re-raises.
        assert clock.now == pytest.approx(0.09)

    def test_guard_without_deadline_never_caps(self):
        guard = QueryGuard(max_pages=10)
        assert with_retries(flaky(2), attempts=3, sleep=lambda _s: None, guard=guard) == "ok"


class TestOverloadHints:
    def test_server_hint_raises_the_backoff(self):
        slept: list[float] = []
        result = with_retries(
            flaky(1, ServerOverloadedError("busy", retry_after_s=0.5)),
            attempts=2,
            base_delay=0.01,
            retry_on=(ServerOverloadedError,),
            sleep=slept.append,
        )
        assert result == "ok"
        assert slept == [0.5]  # hint (0.5) beats backoff (0.01)

    def test_hint_still_subject_to_deadline_cap(self):
        clock = FakeClock()
        guard = QueryGuard(timeout_ms=100, clock=clock)
        with pytest.raises(ServerOverloadedError):
            with_retries(
                flaky(1, ServerOverloadedError("busy", retry_after_s=0.5)),
                attempts=2,
                base_delay=0.01,
                retry_on=(ServerOverloadedError,),
                sleep=clock.sleep,
                guard=guard,
            )
        assert clock.now == 0.0  # never slept: 500ms hint > 100ms budget
