"""PageStats/BufferStats consistency under faults and eviction.

The query governor charges its page budget against
``PageStats.logical_reads``; these regressions pin the invariant the
accounting relies on — every counted logical read is classified as
exactly one hit or miss, even when fault injection aborts touches and
``evict_all`` empties pools of any capacity.
"""

from __future__ import annotations

import pytest

from repro.errors import TransientStorageError
from repro.mass.loader import load_xml
from repro.mass.pages import BufferPool, PageKind, PageManager
from repro.resilience import FaultInjector


def _assert_consistent(pool: BufferPool) -> None:
    stats = pool.manager.stats
    assert stats.logical_reads == pool.stats.hits + pool.stats.misses
    assert stats.physical_reads == pool.stats.misses


def _hammer(pool: BufferPool, pages, rounds: int) -> int:
    faults = 0
    for round_index in range(rounds):
        for page in pages:
            try:
                pool.touch(page)
            except TransientStorageError:
                faults += 1
        if round_index == rounds // 2:
            pool.evict_all()
    return faults


@pytest.mark.parametrize("capacity", [0, None, 4])
def test_invariant_under_faults_and_eviction(capacity):
    manager = PageManager(1024)
    pool = BufferPool(manager, capacity=capacity)
    pages = [manager.allocate(PageKind.LEAF) for _ in range(8)]
    FaultInjector(seed=13, rates={"buffer.touch": 0.3}).attach(
        type("S", (), {"buffer": pool, "pages": manager})()
    )
    faults = _hammer(pool, pages, rounds=20)
    assert faults > 0  # the 0.3 rate genuinely fired
    _assert_consistent(pool)
    # An aborted touch must charge nothing anywhere.
    accesses = pool.stats.hits + pool.stats.misses
    assert accesses + faults == 20 * len(pages)


@pytest.mark.parametrize("capacity", [0, None])
def test_evict_all_on_degenerate_capacities(capacity):
    manager = PageManager(1024)
    pool = BufferPool(manager, capacity=capacity)
    pages = [manager.allocate(PageKind.LEAF) for _ in range(4)]
    for page in pages:
        pool.touch(page)
    pool.evict_all()
    assert pool.resident_pages == 0
    for page in pages:
        pool.touch(page)
    _assert_consistent(pool)
    if capacity == 0:
        assert pool.stats.hits == 0  # cold-cache accounting: all misses


def test_store_counters_consistent_after_faulted_queries():
    from repro.engine.engine import VamanaEngine

    store = load_xml(
        "<site>" + "".join(f"<p><n>x{i}</n></p>" for i in range(50)) + "</site>"
    )
    engine = VamanaEngine(store)
    injector = FaultInjector(seed=21, rates={"buffer.touch": 0.05}).attach(store)
    failures = 0
    for _ in range(10):
        try:
            engine.evaluate("//p/n")
        except TransientStorageError:
            failures += 1
    injector.detach(store)
    assert failures > 0
    stats = store.pages.stats
    assert stats.logical_reads == store.buffer.stats.hits + store.buffer.stats.misses
    # And the store still answers correctly once faults stop.
    assert len(engine.evaluate("//p/n")) == 50
