"""FaultInjector determinism and the retry/backoff helper."""

from __future__ import annotations

import pytest

from repro.errors import StorageError, TransientStorageError
from repro.mass.loader import load_xml
from repro.mass.persistence import open_store, save_store
from repro.resilience import (
    FaultInjector,
    open_store_with_retries,
    save_store_with_retries,
    with_retries,
)

DOC = "<site><person><name>Ada</name></person></site>"


def _failure_schedule(injector: FaultInjector, site: str, accesses: int) -> list[int]:
    failed = []
    for index in range(accesses):
        try:
            injector.on_access(site)
        except TransientStorageError:
            failed.append(index)
    return failed


class TestInjector:
    def test_same_seed_same_schedule(self):
        first = _failure_schedule(
            FaultInjector(seed=11, rates={"s": 0.3}), "s", 200
        )
        second = _failure_schedule(
            FaultInjector(seed=11, rates={"s": 0.3}), "s", 200
        )
        assert first == second
        assert first  # the 0.3 rate actually fired

    def test_different_seed_different_schedule(self):
        first = _failure_schedule(FaultInjector(seed=1, rates={"s": 0.3}), "s", 200)
        second = _failure_schedule(FaultInjector(seed=2, rates={"s": 0.3}), "s", 200)
        assert first != second

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(seed=3)
        assert _failure_schedule(injector, "s", 100) == []
        assert injector.accesses["s"] == 100

    def test_max_failures_cap(self):
        injector = FaultInjector(seed=5, rates={"s": 1.0}, max_failures=2)
        failed = _failure_schedule(injector, "s", 10)
        assert failed == [0, 1]
        assert injector.total_failures() == 2

    def test_per_site_rates(self):
        injector = FaultInjector(seed=5, rates={"fails": 1.0})
        injector.on_access("clean")  # default rate 0.0
        with pytest.raises(TransientStorageError):
            injector.on_access("fails")
        assert injector.failures["fails"] == 1
        assert injector.failures["clean"] == 0

    def test_latency_injection_uses_injectable_sleep(self):
        slept = []
        injector = FaultInjector(seed=5, latency_s=0.25, sleep=slept.append)
        for _ in range(4):
            injector.on_access("s")
        assert slept == [0.25] * 4
        assert injector.delays == 4

    def test_attach_detach(self):
        store = load_xml(DOC)
        injector = FaultInjector(seed=9, rates={"buffer.touch": 1.0}).attach(store)
        assert store.buffer.fault_injector is injector
        assert store.pages.fault_injector is injector
        injector.detach(store)
        assert store.buffer.fault_injector is None
        assert store.pages.fault_injector is None


class TestWithRetries:
    def test_success_after_transient_failures(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientStorageError("hiccup")
            return "done"

        assert with_retries(flaky, attempts=4, base_delay=0.01, sleep=slept.append) == "done"
        assert len(attempts) == 3
        assert slept == [0.01, 0.02]  # exponential: base, base*2

    def test_exhausted_attempts_reraise(self):
        slept = []

        def always_fails():
            raise TransientStorageError("down")

        with pytest.raises(TransientStorageError):
            with_retries(always_fails, attempts=3, base_delay=0.5, sleep=slept.append)
        assert slept == [0.5, 1.0]

    def test_max_delay_clamps_backoff(self):
        slept = []

        def always_fails():
            raise TransientStorageError("down")

        with pytest.raises(TransientStorageError):
            with_retries(
                always_fails,
                attempts=5,
                base_delay=0.1,
                multiplier=10.0,
                max_delay=0.3,
                sleep=slept.append,
            )
        assert slept == [0.1, 0.3, 0.3, 0.3]

    def test_permanent_errors_not_retried(self):
        calls = []

        def permanent():
            calls.append(1)
            raise StorageError("broken format")

        with pytest.raises(StorageError):
            with_retries(permanent, attempts=5, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            with_retries(lambda: None, attempts=0)


class TestPersistenceRetryWrappers:
    def test_open_retries_past_transient_faults(self, tmp_path):
        path = str(tmp_path / "doc.mass")
        save_store(load_xml(DOC), path)
        injector = FaultInjector(
            seed=1, rates={"persistence.open": 1.0}, max_failures=2
        )
        slept = []
        store = open_store_with_retries(
            path, attempts=3, base_delay=0.01, sleep=slept.append,
            fault_injector=injector,
        )
        assert len(store.node_index) == 5
        assert injector.failures["persistence.open"] == 2
        assert slept == [0.01, 0.02]

    def test_open_gives_up_after_attempts(self, tmp_path):
        path = str(tmp_path / "doc.mass")
        save_store(load_xml(DOC), path)
        injector = FaultInjector(seed=1, rates={"persistence.open": 1.0})
        with pytest.raises(TransientStorageError):
            open_store_with_retries(
                path, attempts=2, sleep=lambda _s: None, fault_injector=injector
            )
        assert injector.failures["persistence.open"] == 2

    def test_save_retries_mid_save_crash(self, tmp_path):
        path = str(tmp_path / "doc.mass")
        store = load_xml(DOC)
        injector = FaultInjector(
            seed=1, rates={"persistence.save": 1.0}, max_failures=1
        )
        written = save_store_with_retries(
            store, path, attempts=2, sleep=lambda _s: None, fault_injector=injector
        )
        assert written > 0
        assert injector.failures["persistence.save"] == 1
        assert len(open_store(path).node_index) == 5
