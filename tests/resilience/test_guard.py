"""QueryGuard: deadlines, budgets, cancellation, graceful degradation."""

from __future__ import annotations

import time

import pytest

from repro.engine.database import Database
from repro.engine.engine import VamanaEngine
from repro.errors import (
    BudgetExceededError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    TransientStorageError,
)
from repro.optimizer.rules import DEFAULT_RULES
from repro.optimizer.rules.base import RewriteRule
from repro.resilience import FaultInjector, QueryGuard


class SteppingClock:
    """A fake monotonic clock advancing a fixed step per reading."""

    def __init__(self, step: float = 0.05):
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestGuardUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryGuard(timeout_ms=0)
        with pytest.raises(ValueError):
            QueryGuard(max_pages=-1)
        with pytest.raises(ValueError):
            QueryGuard(max_results=-1)

    def test_unlimited_guard_never_trips(self, small_store):
        guard = QueryGuard().bind(small_store)
        for _ in range(1000):
            guard.checkpoint()
            guard.tally_result()
        assert guard.results_used() == 1000

    def test_deterministic_timeout(self, small_store):
        # 50 ms per clock reading against a 100 ms deadline: the guard
        # must trip within the first few checkpoints, no real time needed.
        guard = QueryGuard(timeout_ms=100, clock=SteppingClock(0.05))
        guard.bind(small_store)
        with pytest.raises(QueryTimeoutError) as excinfo:
            for _ in range(10):
                guard.checkpoint()
        assert excinfo.value.timeout_ms == 100
        assert guard.checkpoints <= 3

    def test_page_budget_charges_only_this_query(self, small_store):
        engine = VamanaEngine(small_store)
        engine.evaluate("//person/name")  # unguarded warm-up reads pages
        guard = QueryGuard(max_pages=0).bind(small_store)
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.execute(engine.plan("//person/name")[0], guard=guard)
        assert excinfo.value.resource == "page-read"
        assert excinfo.value.used > 0

    def test_cancellation(self, small_store):
        engine = VamanaEngine(small_store)
        guard = QueryGuard()
        guard.cancel()
        assert guard.cancelled
        with pytest.raises(QueryCancelledError):
            engine.evaluate("//person", guard=guard)


class TestEngineLimits:
    def test_max_results_cap(self, small_store):
        engine = VamanaEngine(small_store)
        assert len(engine.evaluate("//person", max_results=3)) == 3
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.evaluate("//person", max_results=2)
        assert excinfo.value.resource == "result"

    def test_generous_limits_do_not_change_results(self, small_store):
        engine = VamanaEngine(small_store)
        plain = engine.evaluate("//person/name")
        guarded = engine.evaluate(
            "//person/name", timeout_ms=60_000, max_pages=10_000_000, max_results=10_000
        )
        assert plain.keys == guarded.keys

    def test_timeout_on_paper_store_in_bounded_time(self, paper_store):
        """The acceptance query: pathological self-join on the 10 MB-scale
        document aborts near its deadline instead of running for minutes."""
        engine = VamanaEngine(paper_store)
        started = time.perf_counter()
        with pytest.raises(QueryTimeoutError):
            engine.evaluate(
                "//node()//node()[contains(., 'x')]", timeout_ms=150
            )
        elapsed = time.perf_counter() - started
        assert elapsed < 15.0  # generous CI bound; typically ~0.15 s

    def test_page_budget_on_paper_store(self, paper_store):
        engine = VamanaEngine(paper_store)
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.evaluate("//node()//node()", max_pages=500)
        assert excinfo.value.resource == "page-read"
        assert excinfo.value.used <= 500 + 64  # trips promptly, not eventually

    def test_guard_error_is_execution_error(self, small_store):
        engine = VamanaEngine(small_store)
        with pytest.raises(ReproError):
            engine.evaluate("//person", max_results=0)


class TestDatabaseDegradation:
    def test_faulty_document_does_not_sink_collection(self):
        db = Database()
        db.add_document("good", "<site><person><name>Ada</name></person></site>")
        db.add_document("bad", "<site><person><name>Bob</name></person></site>")
        FaultInjector(seed=7, rates={"buffer.touch": 1.0}).attach(db.store("bad"))
        results = db.evaluate("//person/name")
        assert len(results["good"]) == 1
        assert isinstance(results["bad"], TransientStorageError)

    def test_on_error_raise_fails_fast(self):
        db = Database()
        db.add_document("bad", "<site><a/></site>")
        FaultInjector(seed=7, rates={"buffer.touch": 1.0}).attach(db.store("bad"))
        with pytest.raises(TransientStorageError):
            db.evaluate("//a", on_error="raise")

    def test_named_document_always_raises(self):
        db = Database()
        db.add_document("bad", "<site><a/></site>")
        FaultInjector(seed=7, rates={"buffer.touch": 1.0}).attach(db.store("bad"))
        with pytest.raises(TransientStorageError):
            db.evaluate("//a", document="bad")

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            Database().evaluate("//a", on_error="ignore")

    def test_per_document_guard_limits(self):
        db = Database()
        db.add_document("east", "<site><p><n>1</n></p></site>")
        db.add_document("west", "<site><p><n>2</n></p><p><n>3</n></p></site>")
        results = db.evaluate("//p", max_results=1)
        assert isinstance(results["west"], BudgetExceededError)
        assert len(results["east"]) == 1


class _BoomRule(RewriteRule):
    name = "boom"

    def matches(self, plan, node):
        return True

    def apply(self, plan, node):
        raise RuntimeError("kaboom")


class _BoomMatchRule(RewriteRule):
    name = "boom-match"

    def matches(self, plan, node):
        raise ValueError("bad matcher")

    def apply(self, plan, node):  # pragma: no cover - never reached
        raise AssertionError


class TestOptimizerSandbox:
    def test_failing_apply_is_skipped_and_logged(self, small_store):
        engine = VamanaEngine(small_store, rules=(_BoomRule(), *DEFAULT_RULES))
        result = engine.evaluate("//person/name")
        baseline = VamanaEngine(small_store).evaluate("//person/name")
        assert result.keys == baseline.keys
        assert result.trace is not None
        assert any("boom" in failed for failed in result.trace.rule_failures)
        assert "skipped failing rule" in result.trace.describe()

    def test_failing_matcher_is_skipped_and_logged(self, small_store):
        engine = VamanaEngine(small_store, rules=(_BoomMatchRule(), *DEFAULT_RULES))
        result = engine.evaluate("//person")
        assert result.trace is not None
        assert any("boom-match" in failed for failed in result.trace.rule_failures)

    def test_optimizer_crash_falls_back_to_default_plan(self, small_store, monkeypatch):
        engine = VamanaEngine(small_store)

        def explode(plan):
            raise RuntimeError("optimizer meltdown")

        monkeypatch.setattr(engine.optimizer, "optimize", explode)
        result = engine.evaluate("//person/name")
        baseline = VamanaEngine(small_store).evaluate("//person/name", optimize=False)
        assert result.keys == baseline.keys
        assert result.trace.failure is not None
        assert "meltdown" in result.trace.failure
        assert "FAILED" in result.trace.describe()
