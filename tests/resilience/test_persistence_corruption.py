"""Persistence under corruption: detection matrix, atomic save, salvage."""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.cli import main
from repro.errors import StorageError, TransientStorageError
from repro.mass.loader import load_xml
from repro.mass.persistence import (
    MAGIC,
    _encode_record,
    fsck_store,
    open_store,
    save_store,
)
from repro.resilience import FaultInjector, corrupt_bytes, corrupt_file, truncate_file
from repro.xmark.generator import generate_document


@pytest.fixture(scope="module")
def xmark_store_file(tmp_path_factory):
    """A round-tripped XMark store file reused (copied) per corruption case."""
    store = load_xml(generate_document(0.002, seed=42), name="xmark-corruption")
    path = tmp_path_factory.mktemp("stores") / "xmark.mass"
    save_store(store, str(path))
    return str(path), len(store.node_index)


def _copy(source: str, destination) -> str:
    with open(source, "rb") as handle:
        blob = handle.read()
    destination.write_bytes(blob)
    return str(destination)


def _header_size(path: str) -> int:
    with open(path, "rb") as handle:
        raw = handle.read()
    (_version, _count, name_length) = struct.unpack_from("<HIH", raw, 4)
    return 4 + 8 + name_length


class TestCorruptionMatrix:
    """Flip bytes region by region; strict open must diagnose every one."""

    def _regions(self, path: str) -> dict[str, int]:
        size = os.path.getsize(path)
        header = _header_size(path)
        return {
            "magic": 1,
            "version": 4,
            "record_count": 7,
            "name_bytes": 13,  # inside the utf-8 document name
            "first_record": header + 4 + 1,  # first payload's key bytes
            "mid_record_values": size // 2,  # deep in the record stream
            "footer_checksum": size - 2,
        }

    @pytest.mark.parametrize(
        "region",
        [
            "magic",
            "version",
            "record_count",
            "name_bytes",
            "first_record",
            "mid_record_values",
            "footer_checksum",
        ],
    )
    def test_flip_detected(self, xmark_store_file, tmp_path, region):
        source, _total = xmark_store_file
        path = _copy(source, tmp_path / f"{region}.mass")
        corrupt_file(path, [self._regions(path)[region]])
        with pytest.raises(StorageError):
            open_store(path)

    @pytest.mark.parametrize("region", ["first_record", "mid_record_values"])
    def test_recover_salvages_intact_prefix(self, xmark_store_file, tmp_path, region):
        source, total = xmark_store_file
        path = _copy(source, tmp_path / f"recover-{region}.mass")
        offset = self._regions(path)[region]
        corrupt_file(path, [offset])
        store = open_store(path, recover=True)
        report = store.recovery_report
        assert report is not None and not report.ok
        assert report.declared_records == total
        assert len(store.node_index) == report.readable_records
        assert 0 <= report.readable_records < total
        assert report.dropped_records == total - report.readable_records
        assert any("record" in error for error in report.errors)
        # Deep corruption must still leave the long leading prefix usable.
        if region == "mid_record_values":
            assert report.readable_records > 0

    def test_recover_footer_only_corruption_keeps_all_records(
        self, xmark_store_file, tmp_path
    ):
        source, total = xmark_store_file
        path = _copy(source, tmp_path / "footer.mass")
        corrupt_file(path, [os.path.getsize(path) - 2])
        store = open_store(path, recover=True)
        assert len(store.node_index) == total
        assert not store.recovery_report.checksum_ok
        assert store.recovery_report.dropped_records == 0

    def test_recover_bad_magic_is_unrecoverable(self, xmark_store_file, tmp_path):
        source, _total = xmark_store_file
        path = _copy(source, tmp_path / "magic.mass")
        corrupt_file(path, [1])
        with pytest.raises(StorageError, match="unrecoverable"):
            open_store(path, recover=True)

    def test_seeded_random_corruption_is_deterministic(
        self, xmark_store_file, tmp_path
    ):
        source, _total = xmark_store_file
        first = _copy(source, tmp_path / "a.mass")
        second = _copy(source, tmp_path / "b.mass")
        offsets_a = FaultInjector(seed=77).corrupt_store_file(first, count=3)
        offsets_b = FaultInjector(seed=77).corrupt_store_file(second, count=3)
        assert offsets_a == offsets_b
        with open(first, "rb") as fa, open(second, "rb") as fb:
            assert fa.read() == fb.read()


class TestTruncation:
    def test_minimum_file_size_guard(self, tmp_path):
        """14- and 15-byte files used to escape as raw struct.error."""
        for size in (14, 15):
            path = tmp_path / f"tiny{size}.mass"
            path.write_bytes(MAGIC + b"\x00" * (size - 4))
            with pytest.raises(StorageError, match="not a MASS store"):
                open_store(str(path))

    def test_truncated_record_stream(self, xmark_store_file, tmp_path):
        source, total = xmark_store_file
        path = _copy(source, tmp_path / "torn.mass")
        truncate_file(path, int(os.path.getsize(path) * 0.6))
        with pytest.raises(StorageError):
            open_store(path)
        store = open_store(path, recover=True)
        assert 0 < len(store.node_index) < total


class TestV1Compatibility:
    @staticmethod
    def _write_v1(store, path: str) -> None:
        records = list(store.node_index.scan(None, None))
        name_bytes = store.name.encode("utf-8")
        body = [struct.pack("<HIH", 1, len(records), len(name_bytes)), name_bytes]
        body.extend(_encode_record(record) for record in records)
        blob = b"".join(body)
        with open(path, "wb") as out:
            out.write(MAGIC)
            out.write(blob)
            out.write(struct.pack("<I", zlib.adler32(blob)))

    def test_v1_file_still_opens(self, small_store, tmp_path):
        path = str(tmp_path / "v1.mass")
        self._write_v1(small_store, path)
        reopened = open_store(path)
        assert len(reopened.node_index) == len(small_store.node_index)
        assert reopened.name == small_store.name
        assert fsck_store(path).version == 1

    def test_v1_garbled_record_raises_typed_error(self, tmp_path):
        """A decode failure surfaces as StorageError naming the record,
        never as a raw struct.error/IndexError (checksum made valid)."""
        path = tmp_path / "garbled.mass"
        name = b"doc"
        # kind tag 0 with an impossible key depth, then nothing behind it.
        body = struct.pack("<HIH", 1, 1, len(name)) + name + bytes([0, 9])
        path.write_bytes(MAGIC + body + struct.pack("<I", zlib.adler32(body)))
        with pytest.raises(StorageError, match="record 0"):
            open_store(str(path))

    def test_v1_out_of_order_records_rejected(self, small_store, tmp_path):
        path = str(tmp_path / "v1-order.mass")
        records = list(small_store.node_index.scan(None, None))
        name_bytes = small_store.name.encode("utf-8")
        payloads = [_encode_record(record) for record in records]
        payloads[1], payloads[2] = payloads[2], payloads[1]
        body = (
            struct.pack("<HIH", 1, len(records), len(name_bytes))
            + name_bytes
            + b"".join(payloads)
        )
        with open(path, "wb") as out:
            out.write(MAGIC + body + struct.pack("<I", zlib.adler32(body)))
        with pytest.raises(StorageError, match="order"):
            open_store(path)


class TestAtomicSave:
    def test_injected_mid_save_crash_leaves_old_store_intact(
        self, small_store, tmp_path
    ):
        path = str(tmp_path / "store.mass")
        save_store(small_store, path)
        before = open_store(path)

        bigger = load_xml(generate_document(0.001, seed=1), name="other")
        injector = FaultInjector(seed=1, rates={"persistence.save": 1.0})
        with pytest.raises(TransientStorageError):
            save_store(bigger, path, fault_injector=injector)

        assert not os.path.exists(path + ".tmp")
        after = open_store(path)
        assert len(after.node_index) == len(before.node_index)
        assert after.name == before.name

    def test_os_error_raises_chained_storage_error(self, small_store, tmp_path):
        target = str(tmp_path / "missing-dir" / "store.mass")
        with pytest.raises(StorageError, match="save failed") as excinfo:
            save_store(small_store, target)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_unreadable_open_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="cannot read") as excinfo:
            open_store(str(tmp_path / "absent.mass"))
        assert isinstance(excinfo.value.__cause__, OSError)


class TestFsck:
    def test_clean_store(self, xmark_store_file, capsys):
        path, total = xmark_store_file
        report = fsck_store(path)
        assert report.ok
        assert report.readable_records == total
        assert main(["fsck", path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_store_nonzero_exit(self, xmark_store_file, tmp_path, capsys):
        source, _total = xmark_store_file
        path = _copy(source, tmp_path / "bad.mass")
        corrupt_file(path, [os.path.getsize(path) // 2])
        assert main(["fsck", path]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_salvage_writes_reopenable_store(self, xmark_store_file, tmp_path, capsys):
        source, total = xmark_store_file
        path = _copy(source, tmp_path / "bad.mass")
        corrupt_file(path, [os.path.getsize(path) // 2])
        out_path = str(tmp_path / "salvaged.mass")
        assert main(["fsck", path, "--salvage", out_path]) == 1
        assert "salvaged" in capsys.readouterr().out
        salvaged = open_store(out_path)
        assert 0 < len(salvaged.node_index) < total
        assert fsck_store(out_path).ok

    def test_corrupt_bytes_helper_bounds(self):
        with pytest.raises(ValueError):
            corrupt_bytes(b"abc", [3])
        assert corrupt_bytes(b"abc", [0]) == bytes([ord("a") ^ 0xFF]) + b"bc"
