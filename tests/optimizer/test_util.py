"""Plan-navigation helpers used by the rules."""

from __future__ import annotations

from repro.algebra.builder import build_default_plan
from repro.algebra.plan import StepNode
from repro.optimizer.util import (
    context_parent,
    context_path,
    find_by_id,
    has_positional_predicates,
    is_positional,
    on_context_path,
)


def test_find_by_id():
    plan = build_default_plan("//a/b")
    for node in plan.walk():
        assert find_by_id(plan, node.op_id) is node
    assert find_by_id(plan, 999) is None


def test_context_path_order():
    plan = build_default_plan("//a/b/c")
    names = [step.test.name for step in context_path(plan)]
    assert names == ["c", "b", "a"]


def test_context_path_excludes_predicates():
    plan = build_default_plan("//a[x]/b")
    names = [step.test.name for step in context_path(plan)]
    assert names == ["b", "a"]
    predicate_path = context_path(plan)[1].predicates[0].path
    assert not on_context_path(plan, predicate_path)


def test_context_parent():
    plan = build_default_plan("//a/b")
    b_step, a_step = context_path(plan)
    assert context_parent(plan, b_step) is plan.root
    assert context_parent(plan, a_step) is b_step
    orphan = StepNode(a_step.axis, a_step.test)
    assert context_parent(plan, orphan) is None


class TestPositional:
    def pred(self, query):
        plan = build_default_plan(query)
        return context_path(plan)[0].predicates[0]

    def test_number_is_positional(self):
        assert is_positional(self.pred("//a[3]"))

    def test_position_function(self):
        assert is_positional(self.pred("//a[position() = 2]"))

    def test_last_function(self):
        assert is_positional(self.pred("//a[last()]"))

    def test_nested_in_comparison(self):
        assert is_positional(self.pred("//a[position() mod 2 = 0]"))

    def test_boolean_predicates_are_not(self):
        assert not is_positional(self.pred("//a[b]"))
        assert not is_positional(self.pred("//a[b = 'x']"))
        assert not is_positional(self.pred("//a[not(b)]"))

    def test_numbers_inside_comparison_are_not(self):
        assert not is_positional(self.pred("//a[b > 5]"))

    def test_has_positional_predicates(self):
        plan = build_default_plan("//a[b][2]")
        assert has_positional_predicates(context_path(plan)[0])
        plan2 = build_default_plan("//a[b][c]")
        assert not has_positional_predicates(context_path(plan2)[0])
