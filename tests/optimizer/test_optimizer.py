"""Optimizer loop: gating, termination, traces, and the never-worse claim."""

from __future__ import annotations

import pytest

from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan
from repro.cost.estimator import CostEstimator, plan_cost
from repro.optimizer.optimizer import Optimizer, optimize_plan
from repro.optimizer.rules import DEFAULT_RULES


QUERIES = [
    "//person/address",
    "//watches/watch/ancestor::person",
    "/descendant::name/parent::*/self::person/address",
    "//itemref/following-sibling::price/parent::*",
    "//province[text()='Vermont']/ancestor::person",
    "//name[text()='Yung Flach']/following-sibling::emailaddress",
    "//person[profile/@income > 5000]/name",
    "//open_auction/bidder/increase",
    "//person[1]/name",
    "//closed_auction[price > 40]/date",
]


class TestOptimizeLoop:
    @pytest.mark.parametrize("query", QUERIES)
    def test_results_unchanged(self, xmark_store, query):
        plan = build_default_plan(query)
        optimized, _trace = optimize_plan(plan, xmark_store)
        before = sorted(set(execute_plan(plan, xmark_store)))
        after = sorted(set(execute_plan(optimized, xmark_store)))
        assert before == after

    @pytest.mark.parametrize("query", QUERIES)
    def test_estimated_cost_never_worse(self, xmark_store, query):
        plan = build_default_plan(query)
        optimized, trace = optimize_plan(plan, xmark_store)
        assert trace.final_cost <= trace.initial_cost

    @pytest.mark.parametrize("query", QUERIES)
    def test_measured_work_never_worse(self, xmark_store, query):
        """The paper's guarantee, checked on actual index work."""

        def work(plan):
            xmark_store.reset_metrics()
            list(execute_plan(plan, xmark_store))
            snapshot = xmark_store.io_snapshot()
            return snapshot["logical_reads"] + snapshot["entries_scanned"]

        plan = build_default_plan(query)
        optimized, _trace = optimize_plan(plan, xmark_store)
        default_work = work(plan)
        optimized_work = work(optimized)
        assert optimized_work <= default_work * 1.05 + 50  # small slack for probes

    def test_input_plan_not_mutated(self, xmark_store):
        plan = build_default_plan("//person/address")
        snapshot = plan.explain(costs=False)
        optimize_plan(plan, xmark_store)
        assert plan.explain(costs=False) == snapshot

    def test_termination_iteration_bound(self, xmark_store):
        optimizer = Optimizer(xmark_store, max_iterations=2)
        plan = build_default_plan("/descendant::name/parent::*/self::person/address")
        _optimized, trace = optimizer.optimize(plan)
        assert trace.iterations <= 2

    def test_no_rules_is_identity(self, xmark_store):
        optimizer = Optimizer(xmark_store, rules=())
        plan = build_default_plan("//person/address")
        optimized, trace = optimizer.optimize(plan)
        assert trace.entries == []
        # clean-up still runs (it is phase 1, not a rule)
        assert trace.cleaned or plan_cost(optimized) == trace.initial_cost


class TestTrace:
    def test_trace_records_rewrites(self, xmark_store):
        plan = build_default_plan("/descendant::name/parent::*/self::person/address")
        _optimized, trace = optimize_plan(plan, xmark_store)
        rules_used = [entry.rule for entry in trace.entries]
        assert rules_used == ["reverse-axis", "predicate-pushdown"]

    def test_trace_costs_strictly_decrease(self, xmark_store):
        plan = build_default_plan("/descendant::name/parent::*/self::person/address")
        _optimized, trace = optimize_plan(plan, xmark_store)
        costs = [trace.initial_cost] + [entry.cost_after for entry in trace.entries]
        assert all(earlier > later for earlier, later in zip(costs, costs[1:]))
        assert trace.final_cost == costs[-1]

    def test_trace_describe(self, xmark_store):
        plan = build_default_plan("//person/address")
        _optimized, trace = optimize_plan(plan, xmark_store)
        text = trace.describe()
        assert "optimization of" in text
        assert "cost" in text

    def test_trace_counts_rejections(self, xmark_store):
        plan = build_default_plan("//itemref/following-sibling::price/parent::*")
        _optimized, trace = optimize_plan(plan, xmark_store)
        assert trace.rules_considered >= trace.rules_rejected

    def test_improved_flag(self, xmark_store):
        plan = build_default_plan("//person/address")
        _optimized, trace = optimize_plan(plan, xmark_store)
        assert trace.improved
        plan2 = build_default_plan("//person")
        _optimized2, trace2 = optimize_plan(plan2, xmark_store)
        assert not trace2.improved

    def test_elapsed_recorded(self, xmark_store):
        plan = build_default_plan("//person/address")
        _optimized, trace = optimize_plan(plan, xmark_store)
        assert trace.elapsed_seconds > 0

    def test_optimization_overhead_is_small(self, xmark_store):
        """'negligible optimization overhead' — bounded milliseconds, because
        costing is O(log n) index counts."""
        plan = build_default_plan("/descendant::name/parent::*/self::person/address")
        _optimized, trace = optimize_plan(plan, xmark_store)
        assert trace.elapsed_seconds < 0.25


class TestRuleGating:
    def test_rejected_rewrite_not_applied(self, xmark_store):
        """Q4's parent::* after following-sibling has no profitable rule."""
        plan = build_default_plan("//itemref/following-sibling::price/parent::*")
        optimized, trace = optimize_plan(plan, xmark_store)
        assert trace.entries == []
        assert trace.final_cost == trace.initial_cost

    def test_default_rule_library_is_complete(self):
        names = {rule.name for rule in DEFAULT_RULES}
        assert names == {
            "value-index",
            "reverse-axis",
            "predicate-pushdown",
            "duplicate-elimination",
            "path-fusion",
        }

    def test_estimator_reused(self, xmark_store):
        optimizer = Optimizer(xmark_store)
        assert isinstance(optimizer.estimator, CostEstimator)
