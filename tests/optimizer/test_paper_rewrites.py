"""The paper's worked optimizations (Figures 8, 9, 11 and the Q2 rewrite),
checked end-to-end on the calibrated document."""

from __future__ import annotations

import pytest

from repro.model import Axis
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan
from repro.algebra.plan import ExistsNode, StepNode, ValueStepNode
from repro.optimizer.optimizer import optimize_plan


def chain(plan):
    nodes = []
    node = plan.root.context_child
    while node is not None:
        nodes.append(node)
        node = node.context_child
    return nodes


class TestQ1Sequence:
    """Section VI-C.1: reverse-axis first, then push-down of child::address,
    ending at the Figure 11 plan //address[parent::person[child::name]]."""

    QUERY = "/descendant::name/parent::*/self::person/address"

    @pytest.fixture(scope="class")
    def outcome(self, paper_store):
        plan = build_default_plan(self.QUERY)
        return optimize_plan(plan, paper_store)

    def test_rule_sequence(self, outcome):
        _plan, trace = outcome
        assert [entry.rule for entry in trace.entries] == [
            "reverse-axis",
            "predicate-pushdown",
        ]

    def test_final_shape_is_figure11(self, outcome):
        plan, _trace = outcome
        steps = chain(plan)
        assert len(steps) == 1
        address = steps[0]
        assert address.axis is Axis.DESCENDANT and address.test.name == "address"
        outer = address.predicates[0]
        assert isinstance(outer, ExistsNode)
        person = outer.path
        assert person.axis is Axis.PARENT and person.test.name == "person"
        inner = person.predicates[0]
        assert isinstance(inner, ExistsNode)
        assert inner.path.axis is Axis.CHILD and inner.path.test.name == "name"

    def test_results_equal_default(self, paper_store, outcome):
        plan, _trace = outcome
        default = build_default_plan(self.QUERY)
        assert sorted(set(execute_plan(default, paper_store))) == sorted(
            set(execute_plan(plan, paper_store))
        )

    def test_result_cardinality(self, paper_store, outcome):
        plan, _trace = outcome
        assert len(set(execute_plan(plan, paper_store))) == 1256

    def test_fetch_reduction_claim(self, paper_store, outcome):
        """Section VIII: the optimized Q1 'reduces cost by at least 40%'.

        Measured as index work (page touches + entries scanned), the
        optimized plan must cut at least 40% versus the default plan.
        """
        plan, _trace = outcome
        default = build_default_plan(self.QUERY)

        def work(p):
            paper_store.reset_metrics()
            list(execute_plan(p, paper_store))
            snapshot = paper_store.io_snapshot()
            return snapshot["logical_reads"] + snapshot["entries_scanned"]

        assert work(plan) <= 0.6 * work(default)


class TestQ2ValueIndex:
    """Figure 9: //name[text()='Yung Flach'] becomes a value-index probe."""

    QUERY = "//name[text() = 'Yung Flach']/following-sibling::emailaddress"

    @pytest.fixture(scope="class")
    def outcome(self, paper_store):
        return optimize_plan(build_default_plan(self.QUERY), paper_store)

    def test_value_index_rule_fired(self, outcome):
        _plan, trace = outcome
        assert trace.entries[0].rule == "value-index"

    def test_final_shape_is_figure9b(self, outcome):
        plan, _trace = outcome
        steps = chain(plan)
        assert [type(step).__name__ for step in steps] == [
            "StepNode",
            "StepNode",
            "ValueStepNode",
        ]
        sibling, name, value = steps
        assert sibling.axis is Axis.FOLLOWING_SIBLING
        assert name.axis is Axis.PARENT and name.test.name == "name"
        assert isinstance(value, ValueStepNode) and value.value == "Yung Flach"

    def test_exactly_one_result(self, paper_store, outcome):
        plan, _trace = outcome
        assert len(set(execute_plan(plan, paper_store))) == 1

    def test_touches_a_fraction_of_the_names(self, paper_store, outcome):
        """4825 names exist; the optimized plan must touch only a handful of
        index entries (TC = 1)."""
        plan, _trace = outcome
        paper_store.reset_metrics()
        list(execute_plan(plan, paper_store))
        snapshot = paper_store.io_snapshot()
        assert snapshot["entries_scanned"] < 100


class TestQ2DuplicateElimination:
    """Section VIII: //watches/watch/ancestor::person →
    //watches[watch]/ancestor::person (as ancestor-or-self)."""

    QUERY = "//watches/watch/ancestor::person"

    @pytest.fixture(scope="class")
    def outcome(self, paper_store):
        return optimize_plan(build_default_plan(self.QUERY), paper_store)

    def test_rule_fired(self, outcome):
        _plan, trace = outcome
        assert "duplicate-elimination" in [entry.rule for entry in trace.entries]

    def test_shape(self, outcome):
        plan, _trace = outcome
        steps = chain(plan)
        ancestor = steps[0]
        assert ancestor.axis is Axis.ANCESTOR_OR_SELF
        carrier = steps[-1]
        assert carrier.test.name == "watches"
        assert any(isinstance(p, ExistsNode) for p in carrier.predicates)

    def test_results_equal_default(self, paper_store, outcome):
        plan, _trace = outcome
        default = build_default_plan(self.QUERY)
        assert sorted(set(execute_plan(default, paper_store))) == sorted(
            set(execute_plan(plan, paper_store))
        )

    def test_pipeline_emits_fewer_tuples(self, paper_store, outcome):
        """The rewrite's point: one tuple per watches, not per watch."""
        plan, _trace = outcome
        default = build_default_plan(self.QUERY)
        raw_default = len(list(execute_plan(default, paper_store)))
        raw_optimized = len(list(execute_plan(plan, paper_store)))
        assert raw_optimized < raw_default


class TestQ5Vermont:
    QUERY = "//province[text()='Vermont']/ancestor::person"

    def test_value_rewrite_and_results(self, paper_store):
        plan, trace = optimize_plan(build_default_plan(self.QUERY), paper_store)
        assert trace.entries and trace.entries[0].rule == "value-index"
        default = build_default_plan(self.QUERY)
        expected = sorted(set(execute_plan(default, paper_store)))
        assert sorted(set(execute_plan(plan, paper_store))) == expected
        assert len(expected) == paper_store.text_count("Vermont")
