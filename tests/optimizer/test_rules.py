"""Rewrite-rule unit tests: match guards, applied shapes, equivalence."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.model import Axis
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan
from repro.algebra.plan import ExistsNode, StepNode, ValueStepNode
from repro.optimizer.cleanup import cleanup_plan
from repro.optimizer.rules import (
    DuplicateEliminationRule,
    PredicatePushdownRule,
    ReverseAxisRule,
    ValueIndexRule,
)


@pytest.fixture(scope="module")
def store(xmark_store):
    return xmark_store


def prepared(query):
    plan = build_default_plan(query)
    cleanup_plan(plan)
    return plan


def chain(plan):
    nodes = []
    node = plan.root.context_child
    while node is not None:
        nodes.append(node)
        node = node.context_child
    return nodes


def apply_rule(rule, plan, node):
    candidate = plan.clone()
    target = next(n for n in candidate.walk() if n.op_id == node.op_id)
    rule.apply(candidate, target)
    cleanup_plan(candidate)
    return candidate


def results(store, plan):
    return sorted(set(execute_plan(plan, store)))


class TestReverseAxisRule:
    rule = ReverseAxisRule()

    def test_matches_parent_over_descendant_leaf(self):
        plan = prepared("//name/parent::person")
        parent_step = chain(plan)[0]
        assert self.rule.matches(plan, parent_step)

    def test_no_match_on_nonleaf_context(self):
        plan = prepared("//a/b/parent::c")
        parent_step = chain(plan)[0]
        assert not self.rule.matches(plan, parent_step)

    def test_no_match_for_down_axis(self):
        plan = prepared("//a/b")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_with_positional_predicate(self):
        plan = prepared("//name/parent::person[2]")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_inside_predicate_path(self):
        plan = prepared("//x[//name/parent::person]")
        exists = chain(plan)[0].predicates[0]
        inner_parent = exists.path
        assert not self.rule.matches(plan, inner_parent)

    def test_applied_shape_figure8(self):
        """descendant::name/parent::person → descendant::person[child::name]."""
        plan = prepared("//name/parent::person")
        rewritten = apply_rule(self.rule, plan, chain(plan)[0])
        steps = chain(rewritten)
        assert len(steps) == 1
        step = steps[0]
        assert step.axis is Axis.DESCENDANT and step.test.name == "person"
        probe = step.predicates[0]
        assert isinstance(probe, ExistsNode)
        assert probe.path.axis is Axis.CHILD and probe.path.test.name == "name"

    def test_ancestor_becomes_descendant_probe(self):
        plan = prepared("//watch/ancestor::person")
        rewritten = apply_rule(self.rule, plan, chain(plan)[0])
        probe = chain(rewritten)[0].predicates[0]
        assert probe.path.axis is Axis.DESCENDANT

    def test_leaf_predicates_travel_into_probe(self):
        plan = prepared("//name[text() = 'Yung Flach']/parent::person")
        rewritten = apply_rule(self.rule, plan, chain(plan)[0])
        probe = chain(rewritten)[0].predicates[0]
        assert len(probe.path.predicates) == 1

    @pytest.mark.parametrize(
        "query",
        [
            "//name/parent::person",
            "//name/parent::*",
            "//watch/ancestor::person",
            "//city/ancestor-or-self::address",
            "//name[text() = 'Yung Flach']/parent::person",
            "descendant::name/parent::node()",
        ],
    )
    def test_equivalence(self, store, query):
        plan = prepared(query)
        target = chain(plan)[0]
        assert self.rule.matches(plan, target)
        rewritten = apply_rule(self.rule, plan, target)
        assert results(store, plan) == results(store, rewritten)


class TestPredicatePushdownRule:
    rule = PredicatePushdownRule()

    def test_matches_child_over_descendant_leaf(self):
        plan = prepared("//person/address")
        assert self.rule.matches(plan, chain(plan)[0])

    def test_no_match_on_node_test(self):
        plan = prepared("//person/node()")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_on_node_leaf(self):
        plan = prepared("descendant::node()/address")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_positional(self):
        plan = prepared("//person/address[1]")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_applied_shape_figure11(self):
        plan = prepared("//person[name]/address")
        rewritten = apply_rule(self.rule, plan, chain(plan)[0])
        steps = chain(rewritten)
        assert len(steps) == 1
        step = steps[0]
        assert step.axis is Axis.DESCENDANT and step.test.name == "address"
        probe = step.predicates[0]
        assert probe.path.axis is Axis.PARENT and probe.path.test.name == "person"
        nested = probe.path.predicates[0]
        assert isinstance(nested, ExistsNode)
        assert nested.path.test.name == "name"

    @pytest.mark.parametrize(
        "query",
        [
            "//person/address",
            "//person[name]/address",
            "//address//city",
            "//watches/watch",
            "//person[watches]/address/city",
        ],
    )
    def test_equivalence(self, store, query):
        plan = prepared(query)
        target = chain(plan)[0]
        if not self.rule.matches(plan, target):
            target = chain(plan)[1] if len(chain(plan)) > 1 else target
        if self.rule.matches(plan, target):
            rewritten = apply_rule(self.rule, plan, target)
            assert results(store, plan) == results(store, rewritten)

    def test_chained_application(self, store):
        """//a/b/c pushes down one level at a time."""
        plan = prepared("//people/person/name")
        first = apply_rule(self.rule, plan, chain(plan)[1])  # person over people
        assert self.rule.matches(first, chain(first)[0])
        second = apply_rule(self.rule, first, chain(first)[0])
        assert len(chain(second)) == 1
        assert results(store, plan) == results(store, second)


class TestValueIndexRule:
    rule = ValueIndexRule()

    def test_matches_text_equality_leaf(self):
        plan = prepared("//name[text() = 'Yung Flach']")
        assert self.rule.matches(plan, chain(plan)[0])

    def test_no_match_for_inequality(self):
        plan = prepared("//name[text() != 'Yung Flach']")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_for_nonleaf(self):
        plan = prepared("//person/name[text() = 'x']")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_for_element_comparison(self):
        plan = prepared("//person[name = 'x']")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_applied_shape_figure9(self):
        plan = prepared("//name[text() = 'Yung Flach']/following-sibling::emailaddress")
        name_step = chain(plan)[1]
        assert self.rule.matches(plan, name_step)
        rewritten = apply_rule(self.rule, plan, name_step)
        steps = chain(rewritten)
        assert steps[1].axis is Axis.PARENT and steps[1].test.name == "name"
        assert isinstance(steps[2], ValueStepNode)
        assert steps[2].value == "Yung Flach"

    def test_other_predicates_kept(self):
        plan = prepared("//name[text() = 'Yung Flach'][starts-with(., 'Y')]")
        rewritten = apply_rule(self.rule, plan, chain(plan)[0])
        parent_step = chain(rewritten)[0]
        assert len(parent_step.predicates) == 1

    @pytest.mark.parametrize(
        "query",
        [
            "//name[text() = 'Yung Flach']",
            "//name[text() = 'Yung Flach']/following-sibling::emailaddress",
            "//province[text() = 'Vermont']/ancestor::person",
            "//city[text() = 'never-occurs']",
        ],
    )
    def test_equivalence(self, store, query):
        plan = prepared(query)
        target = next(
            node
            for node in chain(plan)
            if isinstance(node, StepNode) and self.rule.matches(plan, node)
        )
        rewritten = apply_rule(self.rule, plan, target)
        assert results(store, plan) == results(store, rewritten)

    def test_attribute_value_not_rewritten(self, store):
        """An attribute holding the same string must not satisfy text()=…"""
        tricky = load_xml("<r><a ref='k1'>k1</a><b>k1</b><c other='k1'/></r>")
        plan = prepared("//b[text() = 'k1']")
        target = chain(plan)[0]
        assert self.rule.matches(plan, target)
        rewritten = apply_rule(self.rule, plan, target)
        assert results(tricky, plan) == results(tricky, rewritten)
        assert len(results(tricky, rewritten)) == 1


class TestDuplicateEliminationRule:
    rule = DuplicateEliminationRule()

    def test_matches_q2_shape(self):
        plan = prepared("//watches/watch/ancestor::person")
        assert self.rule.matches(plan, chain(plan)[0])

    def test_no_match_without_carrier(self):
        plan = prepared("//watch/ancestor::person")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_for_descendant_middle(self):
        plan = prepared("//watches//watch/ancestor::person")
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_no_match_when_distinct_not_wanted(self):
        plan = prepared("//watches/watch/ancestor::person")
        plan.root.distinct = False
        assert not self.rule.matches(plan, chain(plan)[0])

    def test_applied_shape(self):
        plan = prepared("//watches/watch/ancestor::person")
        rewritten = apply_rule(self.rule, plan, chain(plan)[0])
        steps = chain(rewritten)
        assert len(steps) == 2
        assert steps[0].axis is Axis.ANCESTOR_OR_SELF
        carrier = steps[1]
        assert carrier.test.name == "watches"
        assert isinstance(carrier.predicates[-1], ExistsNode)

    @pytest.mark.parametrize(
        "query",
        [
            "//watches/watch/ancestor::person",
            "//address/city/ancestor::people",
            "//person/name/ancestor::*",
        ],
    )
    def test_equivalence(self, store, query):
        plan = prepared(query)
        target = chain(plan)[0]
        assert self.rule.matches(plan, target)
        rewritten = apply_rule(self.rule, plan, target)
        assert results(store, plan) == results(store, rewritten)

    def test_middle_matching_test_still_correct(self, store):
        """ancestor-or-self on the carrier keeps the carrier itself when it
        matches the ancestor test — //a/b/ancestor::a includes outer a's."""
        nested = load_xml("<r><a><b/><a><b/></a></a></r>")
        plan = prepared("//a/b/ancestor::a")
        target = chain(plan)[0]
        assert self.rule.matches(plan, target)
        rewritten = apply_rule(self.rule, plan, target)
        assert results(nested, plan) == results(nested, rewritten)
