"""Every shipped rewrite rule must carry provenance metadata.

The optimizer trace, ablation benchmarks, and ``repro check`` output all
identify rules by name, and DESIGN.md promises each rewrite is traceable
to where the paper introduces it.  A rule without a ``paper_ref`` is a
rewrite nobody can audit.
"""

from __future__ import annotations

from repro.optimizer.rules import DEFAULT_RULES, RewriteRule


def test_default_rules_are_rewrite_rules():
    assert DEFAULT_RULES
    for rule in DEFAULT_RULES:
        assert isinstance(rule, RewriteRule)


def test_every_rule_has_a_nonempty_name():
    for rule in DEFAULT_RULES:
        assert rule.name.strip(), type(rule).__name__
        assert rule.name != RewriteRule.name, (
            f"{type(rule).__name__} still uses the base-class placeholder name"
        )


def test_rule_names_are_unique():
    names = [rule.name for rule in DEFAULT_RULES]
    assert len(names) == len(set(names)), names


def test_every_rule_cites_the_paper():
    for rule in DEFAULT_RULES:
        assert rule.paper_ref.strip(), (
            f"rule {rule.name!r} has no paper_ref: every shipped rewrite "
            "must cite the paper section or figure that introduces it"
        )
        assert any(anchor in rule.paper_ref for anchor in ("Section", "Figure")), (
            f"rule {rule.name!r} paper_ref {rule.paper_ref!r} should point at "
            "a Section or Figure"
        )
