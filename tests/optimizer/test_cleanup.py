"""Query clean-up (Figure 5): self-merge and descendant collapse."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.model import Axis, NodeTest, NodeTestKind
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan
from repro.algebra.plan import QueryPlan, RootNode, StepNode
from repro.optimizer.cleanup import cleanup_plan, intersect_tests


def chain(plan):
    nodes = []
    node = plan.root.context_child
    while node is not None:
        nodes.append(node)
        node = node.context_child
    return nodes


class TestIntersectTests:
    def test_node_is_universal(self):
        name = NodeTest.name_test("a")
        assert intersect_tests(NodeTest.node(), name) == name
        assert intersect_tests(name, NodeTest.node()) == name

    def test_any_narrows_to_name(self):
        name = NodeTest.name_test("a")
        assert intersect_tests(NodeTest.name_test("*"), name) == name
        assert intersect_tests(name, NodeTest.name_test("*")) == name

    def test_same_name(self):
        name = NodeTest.name_test("a")
        assert intersect_tests(name, name) == name

    def test_conflicting_names(self):
        assert intersect_tests(NodeTest.name_test("a"), NodeTest.name_test("b")) is None

    def test_kind_vs_name(self):
        assert intersect_tests(NodeTest.text(), NodeTest.name_test("a")) is None

    def test_node_vs_text(self):
        assert intersect_tests(NodeTest.node(), NodeTest.text()) == NodeTest.text()


class TestSelfMerge:
    def test_figure5_merge(self):
        """parent::* / self::person  →  parent::person."""
        plan = build_default_plan("descendant::name/parent::*/self::person/address")
        assert cleanup_plan(plan)
        axes = [step.axis for step in chain(plan)]
        assert axes == [Axis.CHILD, Axis.PARENT, Axis.DESCENDANT]
        assert chain(plan)[1].test.name == "person"

    def test_merge_moves_predicates(self):
        plan = build_default_plan("a[x]/self::a[y]")
        cleanup_plan(plan)
        merged = chain(plan)[0]
        assert merged.test.name == "a"
        assert len(merged.predicates) == 2

    def test_dot_step_merges_away(self):
        plan = build_default_plan("a/./b")
        cleanup_plan(plan)
        assert [step.test.name for step in chain(plan)] == ["b", "a"]

    def test_conflicting_merge_left_alone(self):
        plan = build_default_plan("a/self::b")
        changed = cleanup_plan(plan)
        assert not changed
        assert len(chain(plan)) == 2

    def test_positional_predicate_blocks_merge(self):
        plan = build_default_plan("*[2]/self::a")
        assert not cleanup_plan(plan)

    def test_merge_inside_predicate_path(self):
        plan = build_default_plan("//p[a/self::b/c]")
        # a/self::b conflicts; but a/./c must merge
        plan2 = build_default_plan("//p[a/./c]")
        cleanup_plan(plan2)
        exists = chain(plan2)[0].predicates[0]
        steps = []
        node = exists.path
        while node is not None:
            steps.append(node)
            node = node.context_child
        assert [step.test.name for step in steps] == ["c", "a"]

    def test_merge_chains_to_fixpoint(self):
        plan = build_default_plan("a/./././b")
        cleanup_plan(plan)
        assert [step.test.name for step in chain(plan)] == ["b", "a"]


class TestDescendantCollapse:
    def test_explicit_pair_collapses(self):
        plan = QueryPlan(
            RootNode(
                StepNode(
                    Axis.CHILD,
                    NodeTest.name_test("x"),
                    StepNode(Axis.DESCENDANT_OR_SELF, NodeTest.node()),
                )
            ),
            "manual",
        )
        plan.renumber()
        assert cleanup_plan(plan)
        steps = chain(plan)
        assert len(steps) == 1
        assert steps[0].axis is Axis.DESCENDANT

    def test_pair_with_inner_predicate_not_collapsed(self):
        plan = QueryPlan(
            RootNode(
                StepNode(
                    Axis.CHILD,
                    NodeTest.name_test("x"),
                    StepNode(Axis.DESCENDANT_OR_SELF, NodeTest.node()),
                )
            ),
            "manual",
        )
        from repro.algebra.plan import ExistsNode

        plan.root.context_child.context_child.predicates.append(
            ExistsNode(StepNode(Axis.CHILD, NodeTest.name_test("y")))
        )
        plan.renumber()
        assert not cleanup_plan(plan)

    def test_union_branches_cleaned(self):
        plan = build_default_plan("a/self::a | b/./c")
        cleanup_plan(plan)
        union = plan.root.context_child
        first_branch = union.branches[0]
        assert first_branch.test.name == "a" and first_branch.context_child is None


class TestSemanticsPreserved:
    QUERIES = [
        "descendant::name/parent::*/self::person/address",
        "//person/./name",
        "//person/self::person",
        "a/self::*",
        "//watches/./watch",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_cleanup_preserves_results(self, small_store, query):
        original = build_default_plan(query)
        cleaned = original.clone()
        cleanup_plan(cleaned)
        before = sorted(set(execute_plan(original, small_store)))
        after = sorted(set(execute_plan(cleaned, small_store)))
        assert before == after

    def test_renumber_after_change(self):
        plan = build_default_plan("a/./b")
        cleanup_plan(plan)
        ids = [node.op_id for node in plan.walk()]
        assert ids == list(range(1, len(ids) + 1))
