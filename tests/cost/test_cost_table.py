"""Table I unit tests, plus the soundness check against real execution."""

from __future__ import annotations

import pytest

from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.model import Axis
from repro.cost.table import output_bound
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan
from repro.cost.estimator import CostEstimator

DOWN = [Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.ATTRIBUTE, Axis.NAMESPACE]
UP_AND_ORDER = [
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.ANCESTOR_OR_SELF,
    Axis.FOLLOWING,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING,
    Axis.PRECEDING_SIBLING,
]


class TestTableCells:
    @pytest.mark.parametrize("axis", DOWN)
    def test_down_axes_bounded_by_count(self, axis):
        assert output_bound(axis, count=100, tuples_in=5000) == 100
        assert output_bound(axis, count=100, tuples_in=10) == 100

    @pytest.mark.parametrize("axis", UP_AND_ORDER)
    def test_up_axes_bounded_by_input(self, axis):
        assert output_bound(axis, count=100, tuples_in=5000) == 5000
        assert output_bound(axis, count=100, tuples_in=10) == 10

    def test_self_is_min(self):
        assert output_bound(Axis.SELF, count=100, tuples_in=5000) == 100
        assert output_bound(Axis.SELF, count=100, tuples_in=10) == 10

    def test_paper_figure6_cells(self):
        """The three annotations of Figure 6."""
        # φ3 parent::person: COUNT=2550, IN=4825 → OUT=4825
        assert output_bound(Axis.PARENT, 2550, 4825) == 4825
        # φ2 child::address: COUNT=1256, IN=4825 → OUT=1256
        assert output_bound(Axis.CHILD, 1256, 4825) == 1256

    def test_zero_cases(self):
        assert output_bound(Axis.CHILD, 0, 100) == 0
        assert output_bound(Axis.PARENT, 100, 0) == 0


class TestBoundSoundness:
    """The estimated OUT is an upper bound on actual distinct results."""

    DOC = """<site>
    <a><b><c/><c/></b><b><c/></b></a>
    <a><b><c/></b></a>
    <d><c/></d>
    </site>"""

    #: Queries for which Table I is a genuine upper bound: down axes are
    #: bounded by the node-test population, parent/self/siblings emit at
    #: most one "fan" per input that the model covers.
    SOUND_QUERIES = [
        "//c",
        "//b/c",
        "//a/b",
        "//c/parent::b",
        "//c/ancestor::a",
        "//b/following-sibling::b",
        "//b/preceding-sibling::b",
        "//a/following::d",
        "//b/self::b",
        "//a/descendant-or-self::a",
        "//a[b]",
        "//b[c]/c",
    ]

    @pytest.mark.parametrize("query", SOUND_QUERIES)
    def test_out_bounds_distinct_results(self, query):
        store = load_xml(self.DOC)
        plan = build_default_plan(query)
        CostEstimator(store).estimate(plan)
        actual = len(set(execute_plan(plan, store)))
        assert plan.root.cost.tuples_out >= actual

    @pytest.mark.parametrize("query", SOUND_QUERIES)
    def test_raw_out_bounds_pipeline_tuples(self, query):
        """Pre-predicate bounds also cover raw (duplicate-bearing) output."""
        store = load_xml(self.DOC)
        plan = build_default_plan(query)
        CostEstimator(store).estimate(plan)
        raw = len(list(execute_plan(plan, store)))
        chain_top = plan.root.context_child
        assert chain_top.cost.tuples_out >= raw or chain_top.cost.raw_out >= raw

    @pytest.mark.parametrize("query", ["//d/preceding::a", "//c/ancestor-or-self::*"])
    def test_paper_model_underestimates_one_to_many_reverse_axes(self, query):
        """Documented model limitation, reproduced faithfully: Table I says
        OUT = IN for the order/up axes, but a single input can reach many
        ancestors/preceding nodes, so the published table *under*-estimates
        there.  The paper's own Figure 6 relies on this reading
        (parent::person gets OUT = IN = 4825), so we keep it."""
        store = load_xml(self.DOC)
        plan = build_default_plan(query)
        CostEstimator(store).estimate(plan)
        actual = len(set(execute_plan(plan, store)))
        assert plan.root.cost.tuples_out < actual
