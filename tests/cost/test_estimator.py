"""Cost estimator: IN/OUT propagation, cases 1-6, ordered list."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.algebra.builder import build_default_plan
from repro.algebra.plan import BinaryPredicateNode, ExistsNode, StepNode, ValueStepNode
from repro.cost.estimator import CostEstimator, plan_cost


@pytest.fixture(scope="module")
def store():
    # 4 persons (2 with address), 6 names total, 1 'Target' value
    return load_xml(
        """<site>
        <person><name>Target</name><address/></person>
        <person><name>B</name><address/></person>
        <person><name>C</name></person>
        <person><name>D</name></person>
        <item><name>E</name></item>
        <item><name>F</name></item>
        </site>"""
    )


def chain(plan):
    nodes = []
    node = plan.root.context_child
    while node is not None:
        nodes.append(node)
        node = node.context_child
    return nodes


class TestCases:
    def test_case1_leaf_in_equals_count(self, store):
        plan = build_default_plan("//name")
        CostEstimator(store).estimate(plan)
        leaf = chain(plan)[-1]
        assert leaf.cost.count == 6
        assert leaf.cost.tuples_in == 6
        assert leaf.cost.tuples_out == 6

    def test_case2_nonleaf_in_is_child_out(self, store):
        plan = build_default_plan("//person/name")
        CostEstimator(store).estimate(plan)
        name_step, person_step = chain(plan)
        assert name_step.cost.tuples_in == person_step.cost.tuples_out == 4

    def test_case3_predicate_leaf_receives_parent_tuples(self, store):
        plan = build_default_plan("//person[address]")
        CostEstimator(store).estimate(plan)
        person = chain(plan)[0]
        exists = person.predicates[0]
        assert isinstance(exists, ExistsNode)
        probe = exists.path
        assert probe.cost.tuples_in == 4  # one evaluation per person

    def test_case5_value_equivalence_bounds_output(self, store):
        plan = build_default_plan("//name[text() = 'Target']")
        CostEstimator(store).estimate(plan)
        name_step = chain(plan)[0]
        predicate = name_step.predicates[0]
        assert isinstance(predicate, BinaryPredicateNode)
        assert predicate.cost.text_count == 1
        assert predicate.cost.tuples_out == 1
        assert name_step.cost.tuples_out == 1
        assert name_step.cost.raw_out == 6

    def test_case5_requires_equality(self, store):
        plan = build_default_plan("//name[text() != 'Target']")
        CostEstimator(store).estimate(plan)
        name_step = chain(plan)[0]
        assert name_step.cost.tuples_out == 6  # case 6: no reduction

    def test_case6_exists_no_reduction(self, store):
        plan = build_default_plan("//person[address]")
        CostEstimator(store).estimate(plan)
        assert chain(plan)[0].cost.tuples_out == 4

    def test_literal_tc_annotated(self, store):
        plan = build_default_plan("//name[text() = 'Target']")
        CostEstimator(store).estimate(plan)
        predicate = chain(plan)[0].predicates[0]
        literal = predicate.right
        assert literal.cost.text_count == 1

    def test_value_step_costs(self, store):
        from repro.algebra.plan import QueryPlan, RootNode
        from repro.model import Axis, NodeTest

        leaf = ValueStepNode("Target")
        step = StepNode(Axis.PARENT, NodeTest.name_test("name"), leaf)
        plan = QueryPlan(RootNode(step), "manual")
        plan.renumber()
        CostEstimator(store).estimate(plan)
        assert leaf.cost.text_count == 1
        assert leaf.cost.tuples_in == leaf.cost.tuples_out == 1
        assert step.cost.tuples_out == 1

    def test_union_sums_branches(self, store):
        plan = build_default_plan("//person | //item")
        CostEstimator(store).estimate(plan)
        union = plan.root.context_child
        assert union.cost.tuples_out == 6

    def test_and_takes_min(self, store):
        plan = build_default_plan("//name[text() = 'Target' and text() != 'B']")
        CostEstimator(store).estimate(plan)
        assert chain(plan)[0].cost.tuples_out == 1

    def test_root_mirrors_child(self, store):
        plan = build_default_plan("//person")
        CostEstimator(store).estimate(plan)
        assert plan.root.cost.tuples_out == 4


class TestOrderedList:
    def test_sorted_by_ratio_descending(self, store):
        plan = build_default_plan("//name/parent::person/address")
        ordered = CostEstimator(store).estimate(plan)
        ratios = [entry.ratio for entry in ordered]
        assert ratios == sorted(ratios, reverse=True)

    def test_scaled_to_unit_interval(self, store):
        plan = build_default_plan("//name/parent::person/address")
        ordered = CostEstimator(store).estimate(plan)
        assert all(0.0 <= entry.scaled <= 1.0 for entry in ordered)
        assert ordered[0].scaled == 1.0

    def test_most_selective_first(self, store):
        """//name[text()='Target'] filters 6 -> 1: highest ratio."""
        plan = build_default_plan("//name[text() = 'Target']/parent::person")
        ordered = CostEstimator(store).estimate(plan)
        top = ordered[0].node
        assert isinstance(top, (StepNode, BinaryPredicateNode))
        assert ordered[0].ratio >= 6.0

    def test_selectivity_written_back(self, store):
        plan = build_default_plan("//person/address")
        ordered = CostEstimator(store).estimate(plan)
        for entry in ordered:
            assert entry.node.cost.selectivity == entry.scaled

    def test_zero_out_means_infinite_ratio(self, store):
        plan = build_default_plan("//person/missing")
        ordered = CostEstimator(store).estimate(plan)
        assert ordered[0].ratio == float("inf")
        assert ordered[0].scaled == 1.0

    def test_tie_broken_by_operator_id(self, store):
        plan = build_default_plan("//person/self::person")
        ordered = CostEstimator(store).estimate(plan)
        ids = [entry.node.op_id for entry in ordered if entry.ratio == ordered[0].ratio]
        assert ids == sorted(ids)


class TestPlanCost:
    def test_cost_counts_tuples_touched(self, store):
        plan = build_default_plan("//person/name")
        CostEstimator(store).estimate(plan)
        # person leaf raw 4 + name step raw COUNT=6
        assert plan_cost(plan) == 10

    def test_predicates_count_their_paths(self, store):
        bare = build_default_plan("//person")
        with_predicate = build_default_plan("//person[address]")
        estimator = CostEstimator(store)
        estimator.estimate(bare)
        estimator.estimate(with_predicate)
        assert plan_cost(with_predicate) > plan_cost(bare)

    def test_estimation_is_index_only(self, store):
        """Costing must not materialise records (paper: counts come from
        the index level without going to data)."""
        plan = build_default_plan("//person[name = 'Target']/address")
        store.reset_metrics()
        CostEstimator(store).estimate(plan)
        assert store.metrics.record_fetches == 0
