"""Figures 6 and 7: the paper's cost annotations, digit for digit.

These run on the calibrated factor-0.1 document ("10 MB" in the paper's
axis): COUNT(name) = 4825, COUNT(person) = 2550, COUNT(address) = 1256,
TC('Yung Flach') = 1.
"""

from __future__ import annotations

import pytest

from repro.model import Axis, NodeTest
from repro.algebra.builder import build_default_plan
from repro.cost.estimator import CostEstimator
from repro.optimizer.cleanup import cleanup_plan


def chain(plan):
    nodes = []
    node = plan.root.context_child
    while node is not None:
        nodes.append(node)
        node = node.context_child
    return nodes


class TestDocumentStatistics:
    def test_figure6_counts(self, paper_store):
        NT = NodeTest.name_test
        assert paper_store.count(NT("name")) == 4825
        assert paper_store.count(NT("person")) == 2550
        assert paper_store.count(NT("address")) == 1256

    def test_figure7_text_count(self, paper_store):
        assert paper_store.text_count("Yung Flach") == 1

    def test_counting_is_index_only(self, paper_store):
        paper_store.reset_metrics()
        paper_store.count(NodeTest.name_test("person"))
        paper_store.text_count("Yung Flach")
        snapshot = paper_store.io_snapshot()
        assert snapshot["record_fetches"] == 0
        assert snapshot["entries_scanned"] == 0


class TestFigure6Annotation:
    """Cost annotation of the cleaned Q1 plan (Figure 5b / Figure 6)."""

    @pytest.fixture()
    def annotated(self, paper_store):
        plan = build_default_plan("descendant::name/parent::*/self::person/address")
        cleanup_plan(plan)  # Figure 5: merge parent::*/self::person
        CostEstimator(paper_store).estimate(plan)
        return plan

    def test_cleaned_shape(self, annotated):
        steps = chain(annotated)
        assert [step.axis for step in steps] == [Axis.CHILD, Axis.PARENT, Axis.DESCENDANT]
        assert steps[1].test.name == "person"

    def test_leaf_descendant_name(self, annotated):
        leaf = chain(annotated)[-1]
        assert leaf.cost.count == 4825
        assert leaf.cost.tuples_in == 4825
        assert leaf.cost.tuples_out == 4825

    def test_parent_person(self, annotated):
        parent_step = chain(annotated)[1]
        assert parent_step.cost.count == 2550
        assert parent_step.cost.tuples_in == 4825
        assert parent_step.cost.tuples_out == 4825  # Table I, up axis

    def test_child_address(self, annotated):
        address_step = chain(annotated)[0]
        assert address_step.cost.count == 1256
        assert address_step.cost.tuples_in == 4825
        assert address_step.cost.tuples_out == 1256


class TestFigure7Annotation:
    """Cost annotation of the default Q2 plan."""

    @pytest.fixture()
    def annotated(self, paper_store):
        plan = build_default_plan(
            "//name[text() = 'Yung Flach']/following-sibling::emailaddress"
        )
        CostEstimator(paper_store).estimate(plan)
        return plan

    def test_name_step(self, annotated):
        name_step = chain(annotated)[-1]
        assert name_step.cost.count == 4825
        assert name_step.cost.tuples_in == 4825
        assert name_step.cost.tuples_out == 1  # bounded by TC via case 5

    def test_binary_predicate(self, annotated):
        name_step = chain(annotated)[-1]
        beta = name_step.predicates[0]
        assert beta.cost.tuples_in == 4825
        assert beta.cost.tuples_out == 1
        assert beta.cost.text_count == 1

    def test_literal_tc(self, annotated):
        name_step = chain(annotated)[-1]
        beta = name_step.predicates[0]
        literal = beta.right
        assert literal.cost.text_count == 1

    def test_following_sibling_step(self, annotated):
        sibling_step = chain(annotated)[0]
        assert sibling_step.cost.tuples_in == 1
        assert sibling_step.cost.tuples_out == 1


class TestSelectivityOrdering:
    def test_q1_most_selective_is_child_address(self, paper_store):
        """Section VI-C: 'Optimization of Q1 starts with the most selective
        operator φ child::address'."""
        plan = build_default_plan("descendant::name/parent::*/self::person/address")
        cleanup_plan(plan)
        ordered = CostEstimator(paper_store).estimate(plan)
        top = ordered[0].node
        assert getattr(top, "test", None) is not None
        assert top.test.name == "address"
        assert top.cost.selectivity == 1.0
