"""XML tokenizer tests: happy paths, entities, and malformed input."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XmlError
from repro.xmlkit.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartElement,
)
from repro.xmlkit.parser import parse_string, resolve_entities


class TestElements:
    def test_single_empty_element(self):
        events = parse_string("<a/>")
        assert events == [StartElement("a", (), line=1), EndElement("a", line=1)]

    def test_nested_elements(self):
        events = parse_string("<a><b></b></a>")
        assert [type(event).__name__ for event in events] == [
            "StartElement",
            "StartElement",
            "EndElement",
            "EndElement",
        ]

    def test_names_with_extras(self):
        events = parse_string("<ns:a-b.c_1/>")
        assert events[0].name == "ns:a-b.c_1"

    def test_whitespace_in_tags(self):
        events = parse_string('<a  x = "1"  ></a >')
        assert events[0].attributes == (("x", "1"),)

    def test_declaration_is_skipped(self):
        events = parse_string('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert len(events) == 2

    def test_doctype_is_skipped(self):
        events = parse_string('<!DOCTYPE site [ <!ELEMENT a (b)> ]><a/>')
        assert len(events) == 2

    def test_line_numbers(self):
        events = parse_string("<a>\n<b/>\n</a>")
        assert events[0].line == 1
        assert events[1].line == 2
        assert events[-1].line == 3


class TestAttributes:
    def test_both_quote_styles(self):
        events = parse_string("""<a x="1" y='2'/>""")
        assert events[0].attributes == (("x", "1"), ("y", "2"))

    def test_attribute_order_preserved(self):
        events = parse_string('<a z="1" a="2" m="3"/>')
        assert [name for name, _ in events[0].attributes] == ["z", "a", "m"]

    def test_entities_in_attribute(self):
        events = parse_string('<a x="&lt;&amp;&gt;"/>')
        assert events[0].attributes == (("x", "<&>"),)

    def test_quote_inside_other_quote(self):
        events = parse_string("""<a x="it's"/>""")
        assert events[0].attributes == (("x", "it's"),)


class TestText:
    def test_plain_text(self):
        events = parse_string("<a>hello</a>")
        assert events[1] == Characters("hello", line=1)

    def test_whitespace_only_text_dropped_by_default(self):
        events = parse_string("<a>  \n  <b/>  </a>")
        assert not any(isinstance(event, Characters) for event in events)

    def test_whitespace_kept_on_request(self):
        events = parse_string("<a> <b/></a>", keep_whitespace_text=True)
        assert any(isinstance(event, Characters) for event in events)

    def test_predefined_entities(self):
        events = parse_string("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</a>")
        assert events[1].text == "<tag> & \"q\" 'a'"

    def test_numeric_entities(self):
        events = parse_string("<a>&#65;&#x42;&#X43;</a>")
        assert events[1].text == "ABC"

    def test_cdata(self):
        events = parse_string("<a><![CDATA[<not & parsed>]]></a>")
        assert events[1].text == "<not & parsed>"


class TestMisc:
    def test_comment(self):
        events = parse_string("<a><!-- hi there --></a>")
        assert events[1] == Comment(" hi there ", line=1)

    def test_processing_instruction(self):
        events = parse_string("<a><?target some data?></a>")
        assert events[1] == ProcessingInstruction("target", "some data", line=1)

    def test_comment_before_root(self):
        events = parse_string("<!-- preamble --><a/>")
        assert isinstance(events[0], Comment)


BAD_DOCUMENTS = [
    "",
    "   ",
    "text only",
    "<a>",
    "</a>",
    "<a></b>",
    "<a><b></a></b>",
    "<a/><b/>",
    "<a x=1/>",
    "<a x/>",
    '<a x="1" x="2"/>',
    "<a>&undefined;</a>",
    "<a>&brokenentity</a>",
    "<a><!-- -- --></a>",
    "<a><![CDATA[unterminated</a>",
    "<a><?pi unterminated</a>",
    '<a x="<"/>',
    "<a><b attr=></b></a>",
    "<1tag/>",
    "< a/>",
    "<!DOCTYPE unterminated [",
    "left<a/>",
    "<a/>right",
]


@pytest.mark.parametrize("document", BAD_DOCUMENTS, ids=range(len(BAD_DOCUMENTS)))
def test_malformed_documents_raise(document):
    with pytest.raises(XmlError):
        parse_string(document)


class TestResolveEntities:
    def test_no_amp_fast_path(self):
        text = "no entities here"
        assert resolve_entities(text) is text

    def test_mixed(self):
        assert resolve_entities("a&amp;b&#33;") == "a&b!"

    def test_unterminated(self):
        with pytest.raises(XmlError):
            resolve_entities("broken &amp")


class TestBalanceProperty:
    @given(
        st.recursive(
            st.sampled_from(["x", "hello", "1 &amp; 2"]),
            lambda children: st.tuples(
                st.sampled_from(["a", "b", "long-name"]),
                st.lists(children, max_size=3),
            ),
            max_leaves=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_generated_trees_parse_balanced(self, tree):
        def render(node) -> str:
            if isinstance(node, str):
                return node
            name, children = node
            return f"<{name}>" + "".join(render(child) for child in children) + f"</{name}>"

        document = render(tree) if isinstance(tree, tuple) else f"<root>{tree}</root>"
        events = parse_string(document)
        depth = 0
        for event in events:
            if isinstance(event, StartElement):
                depth += 1
            elif isinstance(event, EndElement):
                depth -= 1
                assert depth >= 0
        assert depth == 0
