"""Serializer tests: escaping, writer, and parse/serialize round trips."""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit.dom import build_dom
from repro.xmlkit.serializer import XmlWriter, escape_attribute, escape_text, serialize


class TestEscaping:
    def test_text_escapes_markup(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attribute_escapes_quotes_and_newlines(self):
        assert escape_attribute('say "hi"\n') == "say &quot;hi&quot;&#10;"

    def test_text_keeps_quotes(self):
        assert escape_text('say "hi"') == 'say "hi"'


class TestWriter:
    def test_nested_structure(self):
        buffer = io.StringIO()
        writer = XmlWriter(buffer)
        writer.declaration()
        writer.start("site", {"version": "1"})
        writer.leaf("name", "Ada & co")
        writer.empty("marker", {"id": "m1"})
        writer.close()
        text = buffer.getvalue()
        assert text.startswith("<?xml")
        dom = build_dom(text)
        assert dom.document_element.name == "site"
        assert dom.document_element.get_attribute("version") == "1"

    def test_close_closes_all_open_tags(self):
        buffer = io.StringIO()
        writer = XmlWriter(buffer)
        writer.start("a")
        writer.start("b")
        writer.start("c")
        writer.close()
        build_dom(buffer.getvalue())  # must be well-formed

    def test_bytes_written_tracks_output(self):
        buffer = io.StringIO()
        writer = XmlWriter(buffer)
        writer.start("a")
        writer.close()
        assert writer.bytes_written == len(buffer.getvalue())

    def test_empty_leaf_self_closes(self):
        buffer = io.StringIO()
        XmlWriter(buffer).leaf("a", "")
        assert "<a/>" in buffer.getvalue()


class TestRoundTrip:
    def test_fixed_document(self):
        source = (
            '<site><p id="x&amp;y">one &lt; two<sub/>tail</p>'
            "<!--note--><?pi data?></site>"
        )
        first = serialize(build_dom(source))
        second = serialize(build_dom(first))
        assert first == second

    def test_subtree_serialization(self):
        dom = build_dom("<a><b>x</b></a>")
        b = next(dom.document_element.child_elements())
        assert serialize(b, declaration=False) == "<b>x</b>"

    _texts = st.text(
        alphabet=st.characters(
            codec="utf-8", exclude_characters="\r", categories=("L", "N", "P", "Zs")
        ),
        max_size=40,
    )

    @given(_texts, _texts)
    @settings(max_examples=100, deadline=None)
    def test_escaping_round_trip_property(self, text, attribute):
        document = f'<a x="{escape_attribute(attribute)}">{escape_text(text)}</a>'
        dom = build_dom(document)
        root = dom.document_element
        assert root.get_attribute("x") == attribute
        assert root.string_value() == text if text.strip() else True
        # a second round trip is byte-stable
        assert serialize(build_dom(serialize(dom))) == serialize(dom)
