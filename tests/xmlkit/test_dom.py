"""DOM construction and navigation tests."""

from __future__ import annotations

import pytest

from repro.mass.records import NodeKind
from repro.xmlkit.dom import build_dom


@pytest.fixture
def dom():
    return build_dom(
        '<site><person id="p0"><name>Ada</name><note>x<b>y</b>z</note></person>'
        "<person id=\"p1\"><name>Grace</name></person><!-- c --></site>"
    )


class TestBuild:
    def test_document_element(self, dom):
        assert dom.document_element.name == "site"

    def test_orders_are_dense_and_increasing(self, dom):
        orders = [node.order for node in dom.all_nodes()]
        assert orders == list(range(len(orders)))

    def test_node_count(self, dom):
        assert dom.node_count == len(list(dom.all_nodes()))

    def test_attributes_attached(self, dom):
        person = next(dom.document_element.child_elements())
        assert person.get_attribute("id") == "p0"
        assert person.get_attribute("missing") is None

    def test_comment_node(self, dom):
        kinds = [node.kind for node in dom.document_element.children]
        assert kinds[-1] is NodeKind.COMMENT

    def test_adjacent_text_merged(self):
        merged = build_dom("<a>one &amp; two</a>")
        texts = [n for n in merged.document_element.children if n.kind is NodeKind.TEXT]
        assert len(texts) == 1
        assert texts[0].value == "one & two"

    def test_text_bytes_accounted(self, dom):
        assert dom.text_bytes > 0


class TestNavigation:
    def test_descendants_in_document_order(self, dom):
        orders = [node.order for node in dom.document_element.descendants()]
        assert orders == sorted(orders)

    def test_ancestors(self, dom):
        person = next(dom.document_element.child_elements())
        name = next(person.child_elements())
        assert [node.name or "doc" for node in name.ancestors()] == ["person", "site", "doc"]

    def test_following_siblings(self, dom):
        first, second = list(dom.document_element.child_elements())
        following = list(first.following_siblings())
        assert second in following

    def test_preceding_siblings_reverse_order(self, dom):
        children = dom.document_element.children
        last = children[-1]
        preceding = list(last.preceding_siblings())
        assert [node.order for node in preceding] == sorted(
            (node.order for node in children[:-1]), reverse=True
        )

    def test_attribute_has_no_siblings(self, dom):
        person = next(dom.document_element.child_elements())
        attribute = person.attributes[0]
        assert list(attribute.following_siblings()) == []
        assert list(attribute.preceding_siblings()) == []


class TestStringValue:
    def test_element_concatenates_descendant_text(self, dom):
        person = next(dom.document_element.child_elements())
        note = [n for n in person.child_elements() if n.name == "note"][0]
        assert note.string_value() == "xyz"

    def test_text_and_attribute(self, dom):
        person = next(dom.document_element.child_elements())
        assert person.attributes[0].string_value() == "p0"
        name = next(person.child_elements())
        assert name.children[0].string_value() == "Ada"

    def test_document_string_value(self, dom):
        assert "Ada" in dom.document_node.string_value()

    def test_repr_forms(self, dom):
        person = next(dom.document_element.child_elements())
        assert "element" in repr(person)
        assert "text" in repr(person.children[0].children[0])
