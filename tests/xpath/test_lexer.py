"""Lexer tests, including the spec's '*'-and-operator disambiguation."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import Token, TokenType, tokenize


def types(expression: str) -> list[TokenType]:
    return [token.type for token in tokenize(expression)][:-1]  # drop END


def values(expression: str) -> list[str]:
    return [token.value for token in tokenize(expression)][:-1]


class TestBasicTokens:
    def test_simple_path(self):
        assert values("//person/address") == ["//", "person", "/", "address"]

    def test_axis_token(self):
        tokens = tokenize("ancestor::person")
        assert tokens[0] == Token(TokenType.AXIS, "ancestor", 0)
        assert tokens[1].type is TokenType.NAME

    def test_axis_with_spaces(self):
        tokens = tokenize("child :: person")
        assert tokens[0].type is TokenType.AXIS

    def test_function_token(self):
        tokens = tokenize("count(x)")
        assert tokens[0].type is TokenType.FUNCTION

    def test_node_type_token(self):
        for name in ("text", "node", "comment", "processing-instruction"):
            tokens = tokenize(f"{name}()")
            assert tokens[0].type is TokenType.NODE_TYPE, name

    def test_at_dot_dotdot(self):
        assert types("@id") == [TokenType.AT, TokenType.NAME]
        assert types("..") == [TokenType.DOTDOT]
        assert types(".") == [TokenType.DOT]

    def test_numbers(self):
        assert values("3.14 10 .5") == ["3.14", "10", ".5"]

    def test_string_literals(self):
        tokens = tokenize("'abc' \"def\"")
        assert [t.value for t in tokens[:2]] == ["abc", "def"]
        assert all(t.type is TokenType.LITERAL for t in tokens[:2])

    def test_comparison_operators(self):
        assert values("a != b <= c >= d < e > f = g") == [
            "a", "!=", "b", "<=", "c", ">=", "d", "<", "e", ">", "f", "=", "g",
        ]

    def test_prefixed_name(self):
        assert values("ns:name") == ["ns:name"]

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestDisambiguation:
    def test_star_after_slash_is_name(self):
        tokens = tokenize("a/*")
        assert tokens[2].type is TokenType.NAME

    def test_star_after_operand_is_operator(self):
        tokens = tokenize("2 * 3")
        assert tokens[1].type is TokenType.OPERATOR

    def test_star_at_start_is_name(self):
        assert tokenize("*")[0].type is TokenType.NAME

    def test_star_after_bracket(self):
        tokens = tokenize("a[*]")
        assert tokens[2].type is TokenType.NAME

    def test_and_after_operand_is_operator(self):
        tokens = tokenize("a and b")
        assert tokens[1] == Token(TokenType.OPERATOR, "and", 2)

    def test_and_at_start_is_name(self):
        assert tokenize("and")[0].type is TokenType.NAME

    def test_div_mod_names_vs_operators(self):
        assert tokenize("div")[0].type is TokenType.NAME
        tokens = tokenize("6 div 2 mod 2")
        assert tokens[1].type is TokenType.OPERATOR
        assert tokens[3].type is TokenType.OPERATOR

    def test_or_after_rbracket_is_operator(self):
        tokens = tokenize("a[1] or b")
        assert tokens[4].type is TokenType.OPERATOR

    def test_star_after_axis(self):
        tokens = tokenize("parent::*")
        assert tokens[1].type is TokenType.NAME


class TestErrors:
    @pytest.mark.parametrize(
        "expression", ["a ! b", "'unterminated", '"also unterminated', "a # b", "§"]
    )
    def test_bad_input_raises(self, expression):
        with pytest.raises(XPathSyntaxError):
            tokenize(expression)

    def test_error_carries_position(self):
        with pytest.raises(XPathSyntaxError) as info:
            tokenize("abc !")
        assert info.value.position == 4
