"""XPath parser tests: structure, abbreviations, precedence, errors."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.model import Axis, NodeTestKind
from repro.xpath import ast
from repro.xpath.parser import parse_xpath


def path(expression: str) -> ast.LocationPath:
    tree = parse_xpath(expression)
    assert isinstance(tree, ast.LocationPath)
    return tree


class TestLocationPaths:
    def test_paper_q1_structure(self):
        q1 = path("descendant::name/parent::*/self::person/address")
        assert [step.axis for step in q1.steps] == [
            Axis.DESCENDANT,
            Axis.PARENT,
            Axis.SELF,
            Axis.CHILD,
        ]
        assert q1.steps[1].test.kind is NodeTestKind.ANY
        assert q1.steps[3].test.name == "address"
        assert not q1.absolute

    def test_absolute_path(self):
        assert path("/site/people").absolute
        assert not path("site/people").absolute

    def test_all_axes_parse(self):
        for axis in Axis:
            parsed = path(f"{axis.value}::x")
            assert parsed.steps[0].axis is axis

    def test_bare_slash(self):
        parsed = path("/")
        assert parsed.absolute and parsed.steps == ()

    def test_double_slash_expansion(self):
        parsed = path("//name")
        assert parsed.absolute
        assert parsed.steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert parsed.steps[0].test.kind is NodeTestKind.NODE
        assert parsed.steps[1].axis is Axis.CHILD

    def test_interior_double_slash(self):
        parsed = path("a//b")
        assert [step.axis for step in parsed.steps] == [
            Axis.CHILD,
            Axis.DESCENDANT_OR_SELF,
            Axis.CHILD,
        ]

    def test_abbreviations(self):
        assert path(".").steps[0].axis is Axis.SELF
        assert path("..").steps[0].axis is Axis.PARENT
        assert path("@id").steps[0].axis is Axis.ATTRIBUTE
        assert path("a/../b").steps[1].axis is Axis.PARENT

    def test_node_tests(self):
        assert path("text()").steps[0].test.kind is NodeTestKind.TEXT
        assert path("node()").steps[0].test.kind is NodeTestKind.NODE
        assert path("comment()").steps[0].test.kind is NodeTestKind.COMMENT
        pi = path("processing-instruction('php')").steps[0].test
        assert pi.kind is NodeTestKind.PROCESSING_INSTRUCTION and pi.name == "php"
        assert path("processing-instruction()").steps[0].test.name == ""

    def test_wildcard(self):
        assert path("*").steps[0].test.kind is NodeTestKind.ANY


class TestPredicates:
    def test_value_predicate(self):
        step = path("//name[text() = 'Yung Flach']").steps[-1]
        assert len(step.predicates) == 1
        predicate = step.predicates[0]
        assert isinstance(predicate, ast.Comparison) and predicate.op == "="
        assert isinstance(predicate.right, ast.StringLiteral)

    def test_number_predicate(self):
        step = path("//person[3]").steps[-1]
        assert isinstance(step.predicates[0], ast.NumberLiteral)

    def test_stacked_predicates(self):
        step = path("//a[b][c][2]").steps[-1]
        assert len(step.predicates) == 3

    def test_nested_path_predicate(self):
        step = path("//person[address/city = 'Monroe']").steps[-1]
        comparison = step.predicates[0]
        assert isinstance(comparison.left, ast.LocationPath)
        assert len(comparison.left.steps) == 2

    def test_boolean_connectors(self):
        predicate = path("//a[b and c or d]").steps[-1].predicates[0]
        assert isinstance(predicate, ast.OrExpr)
        assert isinstance(predicate.left, ast.AndExpr)

    def test_attribute_predicate(self):
        predicate = path("//p[@id='x']").steps[-1].predicates[0]
        assert isinstance(predicate.left, ast.LocationPath)
        assert predicate.left.steps[0].axis is Axis.ATTRIBUTE

    def test_relational_chain(self):
        predicate = path("//a[1 < 2 <= 3]").steps[-1].predicates[0]
        assert isinstance(predicate, ast.Comparison) and predicate.op == "<="


class TestExpressions:
    def test_precedence_or_lowest(self):
        tree = parse_xpath("1 = 1 or 2 = 2 and 3 = 3")
        assert isinstance(tree, ast.OrExpr)
        assert isinstance(tree.right, ast.AndExpr)

    def test_arithmetic_precedence(self):
        tree = parse_xpath("1 + 2 * 3")
        assert isinstance(tree, ast.BinaryOp) and tree.op == "+"
        assert isinstance(tree.right, ast.BinaryOp) and tree.right.op == "*"

    def test_parentheses(self):
        tree = parse_xpath("(1 + 2) * 3")
        assert tree.op == "*"

    def test_unary_minus(self):
        tree = parse_xpath("-3")
        assert isinstance(tree, ast.Negate)

    def test_union(self):
        tree = parse_xpath("//a | //b | //c")
        assert isinstance(tree, ast.UnionExpr) and len(tree.branches) == 3

    def test_function_call(self):
        tree = parse_xpath("count(//person)")
        assert isinstance(tree, ast.FunctionCall)
        assert tree.name == "count" and len(tree.args) == 1

    def test_function_arity_checked(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("count()")
        with pytest.raises(XPathSyntaxError):
            parse_xpath("not(1, 2)")

    def test_unknown_function_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("frobnicate(1)")

    def test_variables_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("//a[$var]")


UNPARSE_CASES = [
    "//person/address",
    "//watches/watch/ancestor::person",
    "/descendant::name/parent::*/self::person/child::address",
    "//itemref/following-sibling::price/parent::*",
    "//province[child::text() = 'Vermont']/ancestor::person",
    "child::*[position() = last()]",
    "count(/descendant-or-self::node()/child::person) > 100",
    "//person[not(child::address) and child::watches]",
    "3 + 4 * 2",
    "//item[child::quantity mod 2 = 1]",
    "self::node()",
    "parent::node()",
    "attribute::id",
]


@pytest.mark.parametrize("expression", UNPARSE_CASES)
def test_unparse_fixed_point(expression):
    """unparse(parse(x)) re-parses to the same tree."""
    first = parse_xpath(expression).unparse()
    assert parse_xpath(first).unparse() == first


BAD_EXPRESSIONS = [
    "",
    "   ",
    "//",
    "a/",
    "/a/",
    "person[",
    "person]",
    "foo(",
    "a b",
    "a ==",
    "1 +",
    "[1]",
    "a::b::c",
    "unknownaxis::b",
    "@",
    "a | ",
    "()",
]


@pytest.mark.parametrize("expression", BAD_EXPRESSIONS, ids=range(len(BAD_EXPRESSIONS)))
def test_bad_expressions_raise(expression):
    with pytest.raises(XPathSyntaxError):
        parse_xpath(expression)


def test_error_message_has_pointer():
    with pytest.raises(XPathSyntaxError) as info:
        parse_xpath("//person[")
    assert "^" in str(info.value)


def test_iter_steps_covers_predicates():
    tree = parse_xpath("//a[b/c]/d")
    steps = list(ast.iter_steps(tree))
    names = sorted(step.test.name for step in steps if step.test.name)
    assert names == ["a", "b", "c", "d"]
