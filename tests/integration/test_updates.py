"""Update behaviour end to end: statistics, costing and query results stay
exact after inserts and deletes — the paper's core argument against
histogram-based costing."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.model import Axis, NodeTest
from repro.engine.engine import VamanaEngine

NT = NodeTest.name_test


@pytest.fixture
def store():
    return load_xml(
        """<site><people>
        <person><name>Ada</name><address><province>Vermont</province></address></person>
        <person><name>Bob</name></person>
        </people></site>"""
    )


class TestStatisticsUnderUpdates:
    def test_counts_track_inserts(self, store):
        people = store.root_element().key.child(0)
        before = store.count(NT("person"))
        for index in range(15):
            key = store.insert_element(people, "person")
            store.insert_element(key, "name", f"New {index}")
        assert store.count(NT("person")) == before + 15
        assert store.count(NT("name")) == 2 + 15

    def test_text_counts_track_updates(self, store):
        people = store.root_element().key.child(0)
        assert store.text_count("Vermont") == 1
        key = store.insert_element(people, "person")
        address = store.insert_element(key, "address")
        store.insert_element(address, "province", "Vermont")
        assert store.text_count("Vermont") == 2
        store.delete_subtree(key)
        assert store.text_count("Vermont") == 1

    def test_cost_model_sees_fresh_counts(self, store):
        engine = VamanaEngine(store)
        plan = engine.compile("//person/name")
        engine.estimator.estimate(plan)
        original = plan.root.context_child.cost.count
        people = store.root_element().key.child(0)
        key = store.insert_element(people, "person")
        store.insert_element(key, "name", "Zed")
        engine.estimator.estimate(plan)
        assert plan.root.context_child.cost.count == original + 1


class TestQueriesUnderUpdates:
    def test_new_nodes_immediately_queryable(self, store):
        engine = VamanaEngine(store)
        people = store.root_element().key.child(0)
        key = store.insert_element(people, "person")
        store.insert_element(key, "name", "Carol")
        result = engine.evaluate("//person[name='Carol']", optimize=False)
        assert len(result) == 1

    def test_value_index_rewrite_after_insert(self, store):
        """The value-index plan finds values inserted after load."""
        engine = VamanaEngine(store)
        people = store.root_element().key.child(0)
        key = store.insert_element(people, "person")
        store.insert_element(key, "name", "Unique Marker")
        result = engine.evaluate("//name[text()='Unique Marker']", optimize=True)
        assert len(result) == 1
        assert result.trace is not None

    def test_deleted_nodes_disappear(self, store):
        engine = VamanaEngine(store)
        person = engine.evaluate("//person[name='Ada']").keys[0]
        store.delete_subtree(person)
        assert len(engine.evaluate("//person", optimize=False)) == 1
        assert len(engine.evaluate("//province", optimize=False)) == 0

    def test_sibling_insert_in_query_order(self, store):
        engine = VamanaEngine(store)
        people = store.root_element().key.child(0)
        persons = [r for r in store.axis_records(people, Axis.CHILD, NT("person"))]
        middle = store.insert_element(people, "person", after=persons[0].key)
        store.insert_element(middle, "name", "Middle")
        names = engine.evaluate("//person/name", optimize=False).string_values()
        assert names == ["Ada", "Middle", "Bob"]

    def test_optimized_equals_default_after_updates(self, store):
        engine = VamanaEngine(store, plan_cache_size=0)
        people = store.root_element().key.child(0)
        for index in range(10):
            key = store.insert_element(people, "person")
            store.insert_element(key, "name", f"P{index}")
            if index % 2:
                address = store.insert_element(key, "address")
                store.insert_element(address, "province", "Vermont")
        for query in (
            "//person/address",
            "//province[text()='Vermont']/ancestor::person",
            "//person[address]/name",
        ):
            default = engine.evaluate(query, optimize=False).key_set()
            optimized = engine.evaluate(query, optimize=True).key_set()
            assert default == optimized
