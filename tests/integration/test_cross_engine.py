"""Cross-engine equivalence: VAMANA (default & optimized), DOM, path-join.

Node identity is compared by document-order rank, which both the MASS
store (B+-tree rank) and the DOM (build order) define identically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsupportedFeatureError
from repro.engine.engine import VamanaEngine
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.pathjoin import PathJoinEngine
from repro.baselines.profiles import JAXEN_PROFILE


@pytest.fixture(scope="module")
def vamana(xmark_store):
    return VamanaEngine(xmark_store)


@pytest.fixture(scope="module")
def dom_engine(xmark_dom):
    engine = DomTraversalEngine(JAXEN_PROFILE)
    engine.load_dom(xmark_dom)
    return engine


@pytest.fixture(scope="module")
def pathjoin_engine(xmark_dom):
    engine = PathJoinEngine()
    engine.load_dom(xmark_dom)
    return engine


def vamana_ranks(vamana, xmark_store, query, optimize):
    result = vamana.evaluate(query, optimize=optimize)
    return sorted(xmark_store.node_index.tree.rank(key) for key in result.keys)


FIXED_QUERIES = [
    # the paper's five benchmark queries
    "//person/address",
    "//watches/watch/ancestor::person",
    "/descendant::name/parent::*/self::person/address",
    "//itemref/following-sibling::price/parent::*",
    "//province[text()='Vermont']/ancestor::person",
    # the running example
    "//name[text() = 'Yung Flach']/following-sibling::emailaddress",
    # broader coverage
    "//open_auction/bidder/personref",
    "//person[profile/@income > 50000]/name",
    "//item[incategory/@category='category3']/name",
    "//closed_auction[annotation]/price",
    "//person[address/country='United States']/address/province",
    "//regions/europe/item/name",
    "//person[watches/watch][address]",
    "//open_auction[bidder][reserve]/current",
    "//person[not(homepage)][creditcard]",
    "//edge/@from",
    "//interval/start/../end",
    "//category/name | //item/name",
    "//person[position() = 7]/name",
    "//bidder[last()]/increase",
    "//watch[2]",
    "//text()[. = 'Yung Flach']",
    "//person[count(watches/watch) > 2]",
    "//address[not(province)]/city",
    "//person[starts-with(name, 'A')]/name",
]


@pytest.mark.parametrize("query", FIXED_QUERIES)
def test_all_engines_agree(vamana, dom_engine, pathjoin_engine, xmark_store, query):
    expected = vamana_ranks(vamana, xmark_store, query, optimize=False)
    optimized = vamana_ranks(vamana, xmark_store, query, optimize=True)
    assert optimized == expected, "optimizer changed the result set"
    dom_result = sorted(node.order for node in dom_engine.evaluate(query))
    assert dom_result == expected, "DOM engine disagrees"
    try:
        join_result = sorted(node.order for node in pathjoin_engine.evaluate(query))
    except UnsupportedFeatureError:
        return
    assert join_result == expected, "path-join engine disagrees"


# -- randomized queries -------------------------------------------------------
#
# The random sweep runs on a small dedicated document: the DOM reference
# evaluates the ordered axes (following/preceding) in O(n^2) per chain, so
# size must stay modest for hypothesis to try many shapes.

_names = st.sampled_from(
    ["person", "name", "address", "city", "watches", "watch", "item",
     "open_auction", "bidder", "price", "itemref", "category", "*"]
)
_cheap_axes = st.sampled_from(
    ["child::", "descendant::", "", "ancestor::", "parent::", "self::",
     "descendant-or-self::", "following-sibling::", "preceding-sibling::"]
)
_all_axes = st.one_of(_cheap_axes, st.sampled_from(["following::", "preceding::"]))


@st.composite
def random_query(draw) -> str:
    steps = []
    step_count = draw(st.integers(1, 3))
    for index in range(step_count):
        # at most one ordered-axis step per query keeps the oracle tractable
        axis_pool = _all_axes if index == step_count - 1 else _cheap_axes
        axis = draw(axis_pool)
        name = draw(_names)
        step = f"{axis}{name}"
        if draw(st.booleans()) and index > 0:
            kind = draw(st.integers(0, 3))
            if kind == 0:
                step += f"[{draw(_names)}]"
            elif kind == 1:
                step += f"[{draw(st.integers(1, 3))}]"
            elif kind == 2:
                step += f"[not({draw(_names)})]"
            else:
                step += "[@id]"
        steps.append(step)
    return "//" + "/".join(steps)


@pytest.fixture(scope="module")
def tiny_setup():
    from repro.xmark.generator import generate_document
    from repro.mass.loader import load_xml
    from repro.xmlkit.dom import build_dom

    text = generate_document(0.0015, seed=42)
    store = load_xml(text, name="tiny")
    dom = DomTraversalEngine(JAXEN_PROFILE)
    dom.load_dom(build_dom(text))
    return VamanaEngine(store), dom, store


@given(random_query())
@settings(max_examples=120, deadline=None)
def test_random_queries_agree_with_dom(tiny_setup, query):
    vamana, dom_engine, store = tiny_setup
    expected = sorted(node.order for node in dom_engine.evaluate(query))
    assert vamana_ranks(vamana, store, query, optimize=False) == expected
    assert vamana_ranks(vamana, store, query, optimize=True) == expected
