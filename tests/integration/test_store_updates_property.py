"""Randomized update sequences against a model (stateful property test).

The store's counts, value index and axis results must track an in-memory
model through arbitrary interleavings of inserts and subtree deletes —
the operational core of the paper's always-fresh-statistics claim.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.model import Axis, NodeTest

NAMES = ["alpha", "beta", "gamma"]
VALUES = ["v1", "v2", "v3", ""]


@given(st.integers(0, 2**32 - 1), st.integers(10, 60))
@settings(max_examples=40, deadline=None)
def test_update_storm_keeps_counts_exact(seed, operations):
    rng = random.Random(seed)
    store = load_xml("<root/>")
    root = store.root_element().key

    # model: element key -> (name, text)
    model: dict[FlexKey, tuple[str, str]] = {}
    parents: list[FlexKey] = [root]

    for _ in range(operations):
        action = rng.random()
        if action < 0.65 or not model:
            parent = rng.choice(parents)
            name = rng.choice(NAMES)
            text = rng.choice(VALUES)
            key = store.insert_element(parent, name, text)
            model[key] = (name, text)
            parents.append(key)
        else:
            victim = rng.choice(list(model))
            store.delete_subtree(victim)
            doomed = [key for key in model if key == victim or victim.is_ancestor_of(key)]
            for key in doomed:
                del model[key]
            parents = [key for key in parents if key not in doomed]

    # counts per name
    for name in NAMES:
        expected = sum(1 for element_name, _text in model.values() if element_name == name)
        assert store.count(NodeTest.name_test(name)) == expected

    # text counts per value
    for value in VALUES:
        if not value:
            continue
        expected = sum(1 for _name, text in model.values() if text == value)
        assert store.text_count(value) == expected

    # the descendant axis sees exactly the model's elements, in key order
    seen = [
        key
        for key, _record in store.axis(
            FlexKey.document(), Axis.DESCENDANT, NodeTest.name_test("*")
        )
    ]
    expected_keys = sorted(model.keys() | {root})
    assert seen == expected_keys

    # tree invariants survived the storm
    store.node_index.tree.check_invariants()
    store.name_index.tree.check_invariants()
    store.value_index.tree.check_invariants()
