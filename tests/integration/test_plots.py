"""ASCII figure rendering."""

from __future__ import annotations

from repro.bench.plots import ascii_figure
from repro.bench.runner import EngineOutcome


def outcome(engine, size, seconds, supported=True):
    return EngineOutcome(
        engine=engine, query="//q", nominal_mb=size, supported=supported, seconds=seconds
    )


def test_basic_chart():
    outcomes = {
        1: [outcome("VQP", 1, 0.01), outcome("galax", 1, 0.1)],
        10: [outcome("VQP", 10, 0.02), outcome("galax", 10, 1.0)],
    }
    chart = ascii_figure("Test figure", outcomes, ("VQP", "galax"))
    assert "Test figure" in chart
    assert "1MB" in chart and "10MB" in chart
    assert "v=VQP" in chart and "g=galax" in chart
    assert "v" in chart and "g" in chart
    assert "log scale" in chart


def test_missing_points_absent():
    outcomes = {
        1: [outcome("VQP", 1, 0.01), outcome("jaxen", 1, 0.1)],
        10: [outcome("VQP", 10, 0.02), outcome("jaxen", 10, 0, supported=False)],
    }
    chart = ascii_figure("Caps", outcomes, ("VQP", "jaxen"))
    # jaxen appears once (its 1 MB point), VQP twice
    body = chart.split("legend")[0]
    assert body.count("j") == 1
    assert body.count("v") == 2


def test_stacked_glyphs_share_a_cell():
    outcomes = {1: [outcome("VQP", 1, 0.01), outcome("VQP-OPT", 1, 0.01)]}
    chart = ascii_figure("Stack", outcomes, ("VQP", "VQP-OPT"))
    assert "vV" in chart


def test_empty_data():
    outcomes = {1: [outcome("VQP", 1, 0, supported=False)]}
    chart = ascii_figure("Empty", outcomes, ("VQP",))
    assert "(no data)" in chart


def test_single_value_span():
    outcomes = {1: [outcome("VQP", 1, 0.5)]}
    chart = ascii_figure("One", outcomes, ("VQP",))
    assert "v" in chart
