"""Property tests over randomly generated XML trees.

Hypothesis builds arbitrary small documents; every (context, axis, test)
triple is then cross-checked between the MASS axis machinery and the DOM
baseline — two independent implementations of the same spec — and engine
queries round-trip through serialization.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mass.loader import load_xml
from repro.mass.records import NodeKind
from repro.model import Axis, NodeTest
from repro.xmlkit.dom import build_dom
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.profiles import JAXEN_PROFILE

_NAMES = ["a", "b", "c"]


@st.composite
def xml_tree(draw, depth: int = 0) -> str:
    name = draw(st.sampled_from(_NAMES))
    attributes = ""
    if draw(st.booleans()):
        attributes = f' k="{draw(st.sampled_from(["v1", "v2"]))}"'
    if depth >= 3:
        children = []
    else:
        children = draw(st.lists(xml_tree(depth=depth + 1), max_size=3))
    text = draw(st.sampled_from(["", "", "t1", "t2"]))
    inner = text + "".join(children)
    if not inner:
        return f"<{name}{attributes}/>"
    return f"<{name}{attributes}>{inner}</{name}>"


def _dom_nodes_in_order(dom):
    return sorted(dom.all_nodes(), key=lambda node: node.order)


def _store_records(store):
    records = [store.require(key) for key in
               (record.key for record in store.node_index.scan(None, None))]
    return records


class TestAxesAgainstDom:
    @given(xml_tree())
    @settings(max_examples=60, deadline=None)
    def test_every_axis_matches_dom(self, document):
        store = load_xml(document)
        dom = build_dom(document)
        engine = DomTraversalEngine(JAXEN_PROFILE)
        engine.load_dom(dom)
        store_records = list(store.node_index.scan(None, None))
        dom_nodes = list(dom.all_nodes())
        assert len(store_records) == len(dom_nodes)
        # pair store records and DOM nodes by document-order position
        tests = [NodeTest.name_test("a"), NodeTest.name_test("*"), NodeTest.node(),
                 NodeTest.text()]
        for index in range(len(store_records)):
            record = store_records[index]
            node = dom_nodes[index]
            assert record.kind == node.kind or (
                record.kind is NodeKind.DOCUMENT and index == 0
            )
            for axis in Axis:
                for test in tests:
                    mass_hits = [
                        store.node_index.tree.rank(key)
                        for key, _rec in store.axis(record.key, axis, test)
                    ]
                    dom_hits = [
                        candidate.order
                        for candidate in engine._axis_nodes(node, axis)
                        if engine._match_test(candidate, axis, test, node)
                    ]
                    assert mass_hits == dom_hits, (
                        document, index, axis.value, str(test)
                    )

    @given(xml_tree())
    @settings(max_examples=60, deadline=None)
    def test_counts_match_brute_force(self, document):
        store = load_xml(document)
        for name in _NAMES:
            test = NodeTest.name_test(name)
            brute = sum(
                1
                for record in store.node_index.scan(None, None)
                if record.kind is NodeKind.ELEMENT and record.name == name
            )
            assert store.count(test) == brute

    @given(xml_tree())
    @settings(max_examples=40, deadline=None)
    def test_serialize_reload_identity(self, document):
        store = load_xml(document)
        fragment = store.serialize_subtree(store.root_element().key)
        again = load_xml(fragment)
        original = [
            (record.kind, record.name, record.value)
            for record in store.node_index.scan(None, None)
        ]
        restored = [
            (record.kind, record.name, record.value)
            for record in again.node_index.scan(None, None)
        ]
        assert original == restored

    @given(xml_tree(), st.sampled_from(["//a", "//b/c", "//a[@k='v1']", "//*[text()='t1']"]))
    @settings(max_examples=60, deadline=None)
    def test_queries_match_dom_engine(self, document, query):
        from repro.engine.engine import VamanaEngine

        store = load_xml(document)
        engine = DomTraversalEngine(JAXEN_PROFILE)
        engine.load(document)
        expected = sorted(node.order for node in engine.evaluate(query))
        vamana = VamanaEngine(store)
        for optimize in (False, True):
            got = sorted(
                store.node_index.tree.rank(key)
                for key in vamana.evaluate(query, optimize=optimize).keys
            )
            assert got == expected
