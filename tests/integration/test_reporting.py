"""Figure-table formatting edge cases."""

from __future__ import annotations

from repro.bench.reporting import format_figure_table, render_series, supported_sizes
from repro.bench.runner import EngineOutcome


def outcome(engine, size, seconds=0.5, supported=True):
    return EngineOutcome(
        engine=engine, query="//q", nominal_mb=size, supported=supported, seconds=seconds
    )


def test_table_alignment_and_header():
    outcomes = {
        1: [outcome("VQP", 1, 0.1234567)],
        10: [outcome("VQP", 10, 2.0)],
    }
    table = format_figure_table("T", outcomes, ("VQP",))
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "size(MB)" in lines[1]
    assert "0.1235" in table and "2.0000" in table


def test_table_missing_engine_column():
    outcomes = {1: [outcome("VQP", 1)]}
    table = format_figure_table("T", outcomes, ("VQP", "ghost"))
    assert "ghost" in table
    last_row = table.splitlines()[-1]
    assert last_row.strip().endswith("-")


def test_table_unsupported_cell():
    outcomes = {1: [outcome("jaxen", 1, supported=False)]}
    table = format_figure_table("T", outcomes, ("jaxen",))
    assert table.splitlines()[-1].strip().endswith("-")


def test_render_series_ordering():
    outcomes = {
        10: [outcome("VQP", 10, 2.0)],
        1: [outcome("VQP", 1, 1.0)],
    }
    assert render_series(outcomes, "VQP") == [1.0, 2.0]


def test_render_series_missing_entries():
    outcomes = {
        1: [outcome("VQP", 1, 1.0)],
        2: [],
        3: [outcome("VQP", 3, 0, supported=False)],
    }
    assert render_series(outcomes, "VQP") == [1.0, None, None]


def test_supported_sizes_empty():
    assert supported_sizes({1: []}, "VQP") == []
