"""Scalability trends: index work vs document size.

The paper's headline — index-only plans read a *fraction* of the data —
shows up as sublinear work growth for selective queries while the DOM
class grows linearly.  These tests assert the trends, not absolute times.
"""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.xmark.generator import generate_document
from repro.engine.engine import VamanaEngine
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.profiles import JAXEN_PROFILE

FACTORS = (0.002, 0.008)


@pytest.fixture(scope="module")
def stores():
    return {factor: load_xml(generate_document(factor, seed=42)) for factor in FACTORS}


@pytest.fixture(scope="module")
def texts():
    return {factor: generate_document(factor, seed=42) for factor in FACTORS}


def vamana_work(store, query, optimize=True):
    engine = VamanaEngine(store)
    store.reset_metrics()
    engine.evaluate(query, optimize=optimize)
    snapshot = store.io_snapshot()
    return snapshot["logical_reads"] + snapshot["entries_scanned"]


class TestIndexWorkScaling:
    def test_point_query_work_is_sublinear(self, stores):
        """TC=1 lookup: work grows ~O(log n), far below the 4x data growth."""
        query = "//name[text()='Yung Flach']/following-sibling::emailaddress"
        small = vamana_work(stores[FACTORS[0]], query)
        large = vamana_work(stores[FACTORS[1]], query)
        assert large < small * 2.5

    def test_selective_query_reads_fraction_of_nodes(self, stores):
        store = stores[FACTORS[1]]
        total_nodes = len(store.node_index)
        work = vamana_work(store, "//province[text()='Vermont']/ancestor::person")
        assert work < total_nodes / 10

    def test_dom_engine_always_walks_everything(self, stores, texts):
        engine = DomTraversalEngine(JAXEN_PROFILE)
        engine.load(texts[FACTORS[1]])
        engine.nodes_visited = 0
        engine.evaluate("//name[text()='Yung Flach']")
        assert engine.nodes_visited >= engine.document.node_count * 0.9

    def test_result_counts_scale_with_document(self, stores):
        small = VamanaEngine(stores[FACTORS[0]]).evaluate("//person/address")
        large = VamanaEngine(stores[FACTORS[1]]).evaluate("//person/address")
        assert 3.0 <= len(large) / len(small) <= 5.0

    def test_index_heights_grow_slowly(self, stores):
        heights = [
            stores[factor].node_index.tree.height() for factor in FACTORS
        ]
        assert heights[1] <= heights[0] + 2


class TestBufferBehaviour:
    def test_warm_cache_hits(self, stores):
        store = stores[FACTORS[1]]
        engine = VamanaEngine(store)
        engine.evaluate("//person/address")  # warm
        store.reset_metrics()
        engine.evaluate("//person/address")
        snapshot = store.io_snapshot()
        assert snapshot["buffer_hits"] > 0

    def test_pages_grow_with_document(self, stores):
        assert (
            stores[FACTORS[1]].pages.live_pages
            > stores[FACTORS[0]].pages.live_pages * 2
        )
