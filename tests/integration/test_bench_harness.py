"""The benchmark harness itself: corpus, runner, reporting."""

from __future__ import annotations

import pytest

from repro.bench.corpus import CorpusDocument, get_corpus_document
from repro.bench.runner import ENGINE_NAMES, run_all_engines, run_query
from repro.bench.reporting import format_figure_table, render_series, supported_sizes


@pytest.fixture(scope="module")
def document():
    return get_corpus_document(1)


class TestCorpus:
    def test_cached(self, document):
        assert get_corpus_document(1) is document

    def test_nominal_vs_actual(self, document):
        assert document.nominal_mb == 1
        assert document.nominal_bytes == 1024 * 1024
        assert document.actual_bytes == len(document.text.encode("utf-8"))

    def test_store_and_dom_lazy(self):
        fresh = CorpusDocument(nominal_mb=1, factor=0.001, text="<site><a/></site>")
        assert fresh._store is None and fresh._dom is None
        assert fresh.store.count.__self__ is fresh.store
        assert fresh.dom.document_element.name == "site"


class TestRunner:
    def test_vamana_outcomes(self, document):
        outcome = run_query("VQP-OPT", "//person/address", document)
        assert outcome.supported
        assert outcome.result_count > 0
        assert outcome.seconds > 0
        assert "record_fetches" in outcome.counters

    def test_all_engines_same_count(self, document):
        outcomes = run_all_engines("//person/address", document)
        counts = {o.result_count for o in outcomes if o.supported}
        assert len(counts) == 1

    def test_unsupported_axis_yields_missing_point(self, document):
        outcome = run_query("exist", "//itemref/following-sibling::price", document)
        assert not outcome.supported
        assert outcome.cell() == "-"
        assert "following-sibling" in outcome.reason

    def test_size_cap_yields_missing_point(self):
        big = get_corpus_document(30)
        outcome = run_query("jaxen", "//person", big)
        assert not outcome.supported

    def test_unknown_engine(self, document):
        with pytest.raises(ValueError):
            run_query("oracle9i", "//person", document)


class TestReporting:
    def test_table_includes_missing_cells(self, document):
        outcomes = {1: run_all_engines("//itemref/following-sibling::price/parent::*", document)}
        table = format_figure_table("Q4", outcomes, ENGINE_NAMES)
        assert "Q4" in table and "-" in table
        assert "VQP-OPT" in table

    def test_render_series(self, document):
        outcomes = {1: run_all_engines("//person/address", document)}
        series = render_series(outcomes, "VQP")
        assert len(series) == 1 and series[0] is not None

    def test_supported_sizes(self, document):
        outcomes = {
            1: run_all_engines("//person", document),
            30: run_all_engines("//person", get_corpus_document(30)),
        }
        assert supported_sizes(outcomes, "VQP") == [1, 30]
        assert supported_sizes(outcomes, "jaxen") == [1]
