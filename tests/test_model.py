"""The shared query model: axes, inverses, node-test matching."""

from __future__ import annotations

import pytest

from repro.mass.records import NodeKind
from repro.model import FORWARD_AXES, Axis, NodeTest, NodeTestKind


class TestAxes:
    def test_thirteen_axes(self):
        assert len(list(Axis)) == 13

    def test_reverse_axes(self):
        reverse = {axis for axis in Axis if axis.is_reverse}
        assert reverse == {
            Axis.ANCESTOR,
            Axis.ANCESTOR_OR_SELF,
            Axis.PRECEDING,
            Axis.PRECEDING_SIBLING,
        }

    def test_forward_axes_complement(self):
        assert FORWARD_AXES == frozenset(Axis) - {
            axis for axis in Axis if axis.is_reverse
        }

    def test_principal_kinds(self):
        assert Axis.ATTRIBUTE.principal_kind is NodeKind.ATTRIBUTE
        assert Axis.NAMESPACE.principal_kind is NodeKind.NAMESPACE
        for axis in Axis:
            if axis not in (Axis.ATTRIBUTE, Axis.NAMESPACE):
                assert axis.principal_kind is NodeKind.ELEMENT

    def test_inverse_pairs_are_involutions(self):
        for axis in Axis:
            inverse = axis.inverse
            if inverse is None or axis is Axis.ATTRIBUTE:
                continue
            assert inverse.inverse is axis, axis

    def test_specific_inverses(self):
        assert Axis.CHILD.inverse is Axis.PARENT
        assert Axis.DESCENDANT.inverse is Axis.ANCESTOR
        assert Axis.FOLLOWING.inverse is Axis.PRECEDING
        assert Axis.FOLLOWING_SIBLING.inverse is Axis.PRECEDING_SIBLING
        assert Axis.SELF.inverse is Axis.SELF
        assert Axis.ATTRIBUTE.inverse is Axis.PARENT
        assert Axis.NAMESPACE.inverse is None

    def test_axis_values_are_spec_names(self):
        assert Axis.DESCENDANT_OR_SELF.value == "descendant-or-self"
        assert Axis.PRECEDING_SIBLING.value == "preceding-sibling"


class TestNodeTestConstruction:
    def test_name_test(self):
        test = NodeTest.name_test("person")
        assert test.kind is NodeTestKind.NAME and test.name == "person"

    def test_star_becomes_any(self):
        assert NodeTest.name_test("*").kind is NodeTestKind.ANY

    def test_kind_tests(self):
        assert NodeTest.text().kind is NodeTestKind.TEXT
        assert NodeTest.node().kind is NodeTestKind.NODE
        assert NodeTest.comment().kind is NodeTestKind.COMMENT
        pi = NodeTest.processing_instruction("php")
        assert pi.kind is NodeTestKind.PROCESSING_INSTRUCTION and pi.name == "php"

    def test_str_rendering(self):
        assert str(NodeTest.name_test("a")) == "a"
        assert str(NodeTest.name_test("*")) == "*"
        assert str(NodeTest.text()) == "text()"
        assert str(NodeTest.node()) == "node()"
        assert str(NodeTest.processing_instruction("x")) == "processing-instruction('x')"
        assert str(NodeTest.processing_instruction()) == "processing-instruction()"

    def test_hashable_and_equal(self):
        assert NodeTest.name_test("a") == NodeTest.name_test("a")
        assert hash(NodeTest.text()) == hash(NodeTest.text())


_MATCH_CASES = [
    # (test, kind, name, principal, expected)
    (NodeTest.node(), NodeKind.ELEMENT, "a", NodeKind.ELEMENT, True),
    (NodeTest.node(), NodeKind.TEXT, "", NodeKind.ELEMENT, True),
    (NodeTest.node(), NodeKind.COMMENT, "", NodeKind.ELEMENT, True),
    (NodeTest.text(), NodeKind.TEXT, "", NodeKind.ELEMENT, True),
    (NodeTest.text(), NodeKind.ELEMENT, "text", NodeKind.ELEMENT, False),
    (NodeTest.comment(), NodeKind.COMMENT, "", NodeKind.ELEMENT, True),
    (NodeTest.comment(), NodeKind.TEXT, "", NodeKind.ELEMENT, False),
    (NodeTest.processing_instruction(), NodeKind.PROCESSING_INSTRUCTION, "t", NodeKind.ELEMENT, True),
    (NodeTest.processing_instruction("t"), NodeKind.PROCESSING_INSTRUCTION, "t", NodeKind.ELEMENT, True),
    (NodeTest.processing_instruction("u"), NodeKind.PROCESSING_INSTRUCTION, "t", NodeKind.ELEMENT, False),
    (NodeTest.name_test("a"), NodeKind.ELEMENT, "a", NodeKind.ELEMENT, True),
    (NodeTest.name_test("a"), NodeKind.ELEMENT, "b", NodeKind.ELEMENT, False),
    (NodeTest.name_test("a"), NodeKind.ATTRIBUTE, "a", NodeKind.ELEMENT, False),
    (NodeTest.name_test("a"), NodeKind.ATTRIBUTE, "a", NodeKind.ATTRIBUTE, True),
    (NodeTest.name_test("*"), NodeKind.ELEMENT, "x", NodeKind.ELEMENT, True),
    (NodeTest.name_test("*"), NodeKind.TEXT, "", NodeKind.ELEMENT, False),
    (NodeTest.name_test("*"), NodeKind.ATTRIBUTE, "x", NodeKind.ATTRIBUTE, True),
    (NodeTest.name_test("a"), NodeKind.TEXT, "", NodeKind.ELEMENT, False),
]


@pytest.mark.parametrize("test,kind,name,principal,expected", _MATCH_CASES)
def test_matching_matrix(test, kind, name, principal, expected):
    assert test.matches(kind, name, principal) is expected
