"""Profile calibration: the paper's Figure 6/7 statistics are exact."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmark.profile import (
    MEGABYTES_PER_FACTOR,
    XmarkProfile,
    factor_for_megabytes,
    paper_profile,
    spread,
    spread_count,
)


class TestSpread:
    def test_exact_total(self):
        ratio = Fraction(1256, 2550)
        marked = sum(1 for index in range(2550) if spread(index, ratio))
        assert marked == 1256
        assert spread_count(2550, ratio) == 1256

    def test_even_distribution(self):
        """No long runs: any window of n/k items holds ~ratio*window marks."""
        ratio = Fraction(1, 3)
        marks = [spread(index, ratio) for index in range(3000)]
        for start in range(0, 3000, 300):
            window = marks[start : start + 300]
            assert 95 <= sum(window) <= 105

    def test_zero_and_one(self):
        assert not any(spread(index, Fraction(0)) for index in range(50))
        assert all(spread(index, Fraction(1)) for index in range(50))

    @given(st.integers(0, 2000), st.fractions(min_value=0, max_value=1))
    @settings(max_examples=100)
    def test_prefix_counts_are_floor(self, total, ratio):
        marked = sum(1 for index in range(total) if spread(index, ratio))
        assert marked == (total * ratio.numerator) // ratio.denominator


class TestPaperCalibration:
    @pytest.fixture(scope="class")
    def profile(self):
        return paper_profile()

    def test_factor_mapping(self):
        assert factor_for_megabytes(10) == pytest.approx(0.1)
        assert MEGABYTES_PER_FACTOR == 100.0

    def test_persons_at_10mb(self, profile):
        assert profile.persons(0.1) == 2550

    def test_names_at_10mb(self, profile):
        assert profile.expected_names(0.1) == 4825

    def test_addresses_at_10mb(self, profile):
        assert profile.expected_addresses(0.1) == 1256

    def test_name_identity(self, profile):
        """person + item + category = name, at any factor."""
        for factor in (0.01, 0.05, 0.1, 0.25, 1.0):
            assert profile.expected_names(factor) == (
                profile.persons(factor)
                + profile.items(factor)
                + profile.categories(factor)
            )

    def test_populations_scale_linearly(self, profile):
        assert profile.persons(0.2) == 2 * profile.persons(0.1)
        assert profile.items(1.0) == 21_750
        assert profile.open_auctions(0.1) == 1200
        assert profile.closed_auctions(0.1) == 975

    def test_minimum_populations(self, profile):
        assert profile.persons(0.000001) == 1
        assert profile.categories(0.000001) == 1

    def test_provinces_subset_of_addresses(self, profile):
        for factor in (0.01, 0.1, 0.5):
            assert 0 < profile.expected_provinces(factor) < profile.expected_addresses(factor)

    def test_profile_is_frozen(self, profile):
        with pytest.raises(AttributeError):
            profile.persons_per_factor = 1

    def test_custom_profile(self):
        profile = XmarkProfile(persons_per_factor=100, address_ratio=Fraction(1, 2))
        assert profile.persons(1.0) == 100
        assert profile.expected_addresses(1.0) == 50
