"""Generator tests: determinism, schema shape, calibrated counts."""

from __future__ import annotations

import pytest

from repro.mass.records import NodeKind
from repro.xmark.generator import XmarkGenerator, generate_document
from repro.xmark.profile import paper_profile
from repro.xmark import vocabulary as vocab
from repro.xmlkit.dom import build_dom

FACTOR = 0.004


@pytest.fixture(scope="module")
def dom():
    return build_dom(generate_document(FACTOR, seed=42))


def element_counts(dom):
    counts: dict[str, int] = {}
    for node in dom.all_nodes():
        if node.kind is NodeKind.ELEMENT:
            counts[node.name] = counts.get(node.name, 0) + 1
    return counts


class TestDeterminism:
    def test_same_seed_same_document(self):
        assert generate_document(FACTOR, seed=7) == generate_document(FACTOR, seed=7)

    def test_different_seed_different_document(self):
        assert generate_document(FACTOR, seed=7) != generate_document(FACTOR, seed=8)

    def test_write_equals_generate(self):
        import io

        generator = XmarkGenerator(seed=42)
        buffer = io.StringIO()
        written = generator.write(buffer, FACTOR)
        assert buffer.getvalue() == generator.generate(FACTOR)
        assert written == len(buffer.getvalue())


class TestSchema:
    def test_top_level_sections(self, dom):
        names = [node.name for node in dom.document_element.child_elements()]
        assert names == [
            "regions",
            "categories",
            "catgraph",
            "people",
            "open_auctions",
            "closed_auctions",
        ]

    def test_all_regions_present(self, dom):
        regions = [node.name for node in dom.document_element.child_elements()][0]
        regions_el = next(dom.document_element.child_elements())
        assert [r.name for r in regions_el.child_elements()] == list(vocab.REGION_NAMES)

    def test_person_structure(self, dom):
        counts = element_counts(dom)
        profile = paper_profile()
        assert counts["person"] == profile.persons(FACTOR)
        assert counts["emailaddress"] == counts["person"]

    def test_itemref_followed_by_price_in_closed_auctions(self, dom):
        """The adjacency Q4's following-sibling step navigates."""
        closed = [
            node
            for node in dom.document_element.descendants()
            if node.kind is NodeKind.ELEMENT and node.name == "closed_auction"
        ]
        assert closed
        for auction in closed:
            children = [child.name for child in auction.child_elements()]
            itemref_at = children.index("itemref")
            assert children[itemref_at + 1] == "price"

    def test_itemref_in_open_auctions_not_followed_by_price(self, dom):
        opened = [
            node
            for node in dom.document_element.descendants()
            if node.kind is NodeKind.ELEMENT and node.name == "open_auction"
        ]
        assert opened
        for auction in opened:
            children = [child.name for child in auction.child_elements()]
            itemref_at = children.index("itemref")
            assert children[itemref_at + 1] != "price"

    def test_provinces_only_in_us_addresses(self, dom):
        addresses = [
            node
            for node in dom.document_element.descendants()
            if node.kind is NodeKind.ELEMENT and node.name == "address"
        ]
        for address in addresses:
            names = [child.name for child in address.child_elements()]
            country = next(
                child for child in address.child_elements() if child.name == "country"
            )
            if "province" in names:
                assert country.string_value() == "United States"
            else:
                assert country.string_value() != "United States"

    def test_watch_references_real_auctions(self, dom):
        auction_count = element_counts(dom)["open_auction"]
        for node in dom.document_element.descendants():
            if node.kind is NodeKind.ELEMENT and node.name == "watch":
                reference = node.get_attribute("open_auction")
                index = int(reference.removeprefix("open_auction"))
                assert 0 <= index < auction_count


class TestCalibratedCounts:
    def test_counts_match_profile(self, dom):
        profile = paper_profile()
        counts = element_counts(dom)
        assert counts["person"] == profile.persons(FACTOR)
        assert counts["item"] == profile.items(FACTOR)
        assert counts["category"] == profile.categories(FACTOR)
        assert counts["name"] == profile.expected_names(FACTOR)
        assert counts["address"] == profile.expected_addresses(FACTOR)
        assert counts["province"] == profile.expected_provinces(FACTOR)
        assert counts["open_auction"] == profile.open_auctions(FACTOR)
        assert counts["closed_auction"] == profile.closed_auctions(FACTOR)

    def test_special_person_unique(self):
        text = generate_document(FACTOR, seed=42)
        assert text.count(vocab.SPECIAL_PERSON_NAME) == 1

    def test_special_person_unique_across_seeds(self):
        for seed in (1, 2, 3):
            assert generate_document(FACTOR, seed=seed).count(vocab.SPECIAL_PERSON_NAME) == 1

    def test_special_person_is_person144_when_large_enough(self):
        text = generate_document(0.01, seed=42)  # 255 persons > 144
        marker = text.index(vocab.SPECIAL_PERSON_NAME)
        preceding = text.rindex('<person id="', 0, marker)
        identifier = text[preceding:].split('"')[1]
        assert identifier == "person144"

    def test_vocab_excludes_special_names(self):
        assert "Yung" not in vocab.FIRST_NAMES
        assert "Flach" not in vocab.LAST_NAMES

    def test_vermont_present_at_scale(self):
        text = generate_document(0.05, seed=42)
        assert "Vermont" in text


class TestScaling:
    def test_document_grows_with_factor(self):
        small = len(generate_document(0.002, seed=42))
        large = len(generate_document(0.008, seed=42))
        assert 2.5 * small < large < 6 * small

    def test_well_formed_at_multiple_factors(self):
        for factor in (0.001, 0.003):
            build_dom(generate_document(factor, seed=42))
