"""All 13 axes, checked against an independent brute-force oracle.

The oracle recomputes every axis from first principles (document-order
list + parent relation), so these tests would catch any error in the
range arithmetic of ``repro.mass.axes``.
"""

from __future__ import annotations

import pytest

from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.mass.records import NodeKind
from repro.model import Axis, NodeTest

DOC = """<site>
<a id="1"><b><c>one</c><c>two</c></b><b2/><b><c>three</c></b></a>
<a id="2"><b><d/><c>four</c></b></a>
<!-- note -->
<?pi data?>
</site>"""


@pytest.fixture(scope="module")
def store():
    return load_xml(DOC, name="axes")


@pytest.fixture(scope="module")
def oracle(store):
    return Oracle(store)


class Oracle:
    """Brute-force axis semantics over the flat record list."""

    def __init__(self, store):
        self.store = store
        self.records = list(store.node_index.scan(None, None))
        self.by_key = {record.key: record for record in self.records}

    def doc_order(self, keys):
        return sorted(keys)

    def axis(self, context: FlexKey, axis: Axis) -> list[FlexKey]:
        """All keys on the axis, in axis order, before node tests."""
        special = (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE)
        keys = [record.key for record in self.records]
        if axis is Axis.SELF:
            return [context]
        if axis is Axis.PARENT:
            parent = context.parent()
            return [parent] if parent is not None else []
        if axis is Axis.ANCESTOR:
            return list(context.ancestors())
        if axis is Axis.ANCESTOR_OR_SELF:
            return [context] + list(context.ancestors())
        if axis is Axis.CHILD:
            return [
                key
                for key in keys
                if key.parent() == context and self.by_key[key].kind not in special
            ]
        if axis is Axis.ATTRIBUTE:
            return [
                key
                for key in keys
                if key.parent() == context
                and self.by_key[key].kind is NodeKind.ATTRIBUTE
            ]
        if axis is Axis.NAMESPACE:
            return [
                key
                for key in keys
                if key.parent() == context
                and self.by_key[key].kind is NodeKind.NAMESPACE
            ]
        if axis is Axis.DESCENDANT:
            return [
                key
                for key in keys
                if context.is_ancestor_of(key) and self.by_key[key].kind not in special
            ]
        if axis is Axis.DESCENDANT_OR_SELF:
            return [context] + self.axis(context, Axis.DESCENDANT)
        if axis is Axis.FOLLOWING:
            if context.is_document():
                return []
            bound = context.subtree_upper_bound()
            return [
                key
                for key in keys
                if key > bound or key == bound
                if self.by_key[key].kind not in special
            ]
        if axis is Axis.PRECEDING:
            return [
                key
                for key in sorted(keys, reverse=True)
                if key < context
                and not key.is_ancestor_of(context)
                and not key.is_document()
                and self.by_key[key].kind not in special
            ]
        if axis is Axis.FOLLOWING_SIBLING:
            parent = context.parent()
            if parent is None or self.by_key[context].kind in special:
                return []  # attributes/namespaces have no siblings
            return [
                key
                for key in keys
                if key.parent() == parent and key > context
                and self.by_key[key].kind not in special
            ]
        if axis is Axis.PRECEDING_SIBLING:
            parent = context.parent()
            if parent is None or self.by_key[context].kind in special:
                return []  # attributes/namespaces have no siblings
            return [
                key
                for key in sorted(keys, reverse=True)
                if key.parent() == parent and key < context
                and self.by_key[key].kind not in special
            ]
        raise AssertionError(axis)

    def matching(self, context, axis, test: NodeTest) -> list[FlexKey]:
        principal = axis.principal_kind
        result = []
        for key in self.axis(context, axis):
            record = self.by_key[key]
            if test.matches(record.kind, record.name, principal):
                result.append(key)
        return result


TESTS = [
    NodeTest.name_test("a"),
    NodeTest.name_test("b"),
    NodeTest.name_test("c"),
    NodeTest.name_test("*"),
    NodeTest.node(),
    NodeTest.text(),
    NodeTest.comment(),
    NodeTest.name_test("id"),
]


@pytest.mark.parametrize("axis", list(Axis))
@pytest.mark.parametrize("test", TESTS, ids=str)
def test_axis_matches_oracle_everywhere(store, oracle, axis, test):
    """Every (context, axis, node test) triple agrees with the oracle."""
    for record in list(store.node_index.scan(None, None)):
        got = [key for key, _rec in store.axis(record.key, axis, test)]
        expected = oracle.matching(record.key, axis, test)
        assert got == expected, (
            f"{axis.value}::{test} from {record.key.pretty()} "
            f"({record.kind.value} {record.name})"
        )


class TestAxisOrdering:
    def test_reverse_axes_deliver_reverse_document_order(self, store):
        for record in store.node_index.scan(None, None):
            for axis in (Axis.ANCESTOR, Axis.PRECEDING, Axis.PRECEDING_SIBLING):
                keys = [key for key, _ in store.axis(record.key, axis, NodeTest.node())]
                assert keys == sorted(keys, reverse=True)

    def test_forward_axes_deliver_document_order(self, store):
        for record in store.node_index.scan(None, None):
            for axis in (Axis.DESCENDANT, Axis.FOLLOWING, Axis.FOLLOWING_SIBLING, Axis.CHILD):
                keys = [key for key, _ in store.axis(record.key, axis, NodeTest.node())]
                assert keys == sorted(keys)


class TestAxisPartition:
    def test_spec_partition_of_the_document(self, store):
        """self ∪ ancestor ∪ descendant ∪ following ∪ preceding covers every
        non-attribute node exactly once (XPath 1.0 §2.2)."""
        everything = {
            record.key
            for record in store.node_index.scan(None, None)
            if record.kind not in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE)
        }
        for record in store.node_index.scan(None, None):
            if record.kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE):
                continue
            if record.key.is_document():
                continue
            parts = {}
            for axis in (Axis.SELF, Axis.ANCESTOR, Axis.DESCENDANT, Axis.FOLLOWING, Axis.PRECEDING):
                parts[axis] = {key for key, _ in store.axis(record.key, axis, NodeTest.node())}
            union = set()
            total = 0
            for keys in parts.values():
                union |= keys
                total += len(keys)
            # the document node is an ancestor; it is in everything too
            assert union == everything
            assert total == len(union), "axes must be pairwise disjoint"


class TestAxisCounts:
    def test_count_upper_bounds_hold(self, store, oracle):
        """axis_count (when defined) is >= the true result size."""
        for record in store.node_index.scan(None, None):
            for axis in Axis:
                for test in TESTS:
                    bound = store.axis_count(record.key, axis, test)
                    if bound is None:
                        continue
                    actual = len(oracle.matching(record.key, axis, test))
                    assert bound >= actual

    def test_count_exact_for_descendant_name(self, store, oracle):
        for record in store.node_index.scan(None, None):
            bound = store.axis_count(record.key, Axis.DESCENDANT, NodeTest.name_test("c"))
            actual = len(oracle.matching(record.key, Axis.DESCENDANT, NodeTest.name_test("c")))
            assert bound == actual
