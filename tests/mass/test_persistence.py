"""Store persistence: binary round trips and corruption handling."""

from __future__ import annotations

import struct

import pytest

from repro.errors import StorageError
from repro.mass.loader import load_xml
from repro.mass.persistence import open_store, save_store
from repro.model import Axis, NodeTest
from repro.xmark.generator import generate_document


class TestRoundTrip:
    def test_counts_preserved(self, small_store, tmp_path):
        path = str(tmp_path / "small.mass")
        save_store(small_store, path)
        reopened = open_store(path)
        NT = NodeTest.name_test
        for name in ("person", "name", "address", "watch"):
            assert reopened.count(NT(name)) == small_store.count(NT(name))
        assert reopened.text_count("Yung Flach") == 1
        assert reopened.name == small_store.name

    def test_serialization_identical(self, small_store, tmp_path):
        path = str(tmp_path / "small.mass")
        save_store(small_store, path)
        reopened = open_store(path)
        original = small_store.serialize_subtree(small_store.root_element().key)
        restored = reopened.serialize_subtree(reopened.root_element().key)
        assert original == restored

    def test_queries_identical(self, small_store, tmp_path):
        from repro.engine.engine import VamanaEngine

        path = str(tmp_path / "small.mass")
        save_store(small_store, path)
        reopened = open_store(path)
        for query in ("//person/address", "//watch/@open_auction", "//price"):
            original = VamanaEngine(small_store).evaluate(query)
            restored = VamanaEngine(reopened).evaluate(query)
            assert original.keys == restored.keys

    def test_xmark_round_trip(self, tmp_path):
        store = load_xml(generate_document(0.002, seed=42))
        path = str(tmp_path / "xmark.mass")
        save_store(store, path)
        reopened = open_store(path)
        assert len(reopened.node_index) == len(store.node_index)

    def test_store_options_forwarded(self, small_store, tmp_path):
        path = str(tmp_path / "small.mass")
        save_store(small_store, path)
        reopened = open_store(path, page_size=1024)
        assert reopened.pages.page_size == 1024

    def test_updates_after_reopen(self, small_store, tmp_path):
        path = str(tmp_path / "small.mass")
        save_store(small_store, path)
        reopened = open_store(path)
        root = reopened.root_element().key
        reopened.insert_element(root, "added", "later")
        assert reopened.count(NodeTest.name_test("added")) == 1


class TestCorruption:
    def test_not_a_store(self, tmp_path):
        path = tmp_path / "junk.mass"
        path.write_bytes(b"definitely not a store")
        with pytest.raises(StorageError, match="not a MASS store"):
            open_store(str(path))

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "tiny.mass"
        path.write_bytes(b"MASS")
        with pytest.raises(StorageError):
            open_store(str(path))

    def test_bit_flip_detected(self, small_store, tmp_path):
        path = tmp_path / "flip.mass"
        save_store(small_store, str(path))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="checksum"):
            open_store(str(path))

    def test_bad_version(self, small_store, tmp_path):
        import zlib

        path = tmp_path / "version.mass"
        save_store(small_store, str(path))
        blob = bytearray(path.read_bytes())
        body = bytearray(blob[4:-4])
        struct.pack_into("<H", body, 0, 99)  # version field
        checksum = zlib.adler32(bytes(body))
        path.write_bytes(b"MASS" + bytes(body) + struct.pack("<I", checksum))
        with pytest.raises(StorageError, match="version"):
            open_store(str(path))


class TestSerializeSubtree:
    def test_element_fragment(self, small_store):
        person = next(
            small_store.axis_records(
                small_store.root_element().key.child(0), Axis.CHILD,
                NodeTest.name_test("person"),
            )
        )
        fragment = small_store.serialize_subtree(person.key)
        assert fragment.startswith('<person id="person0">')
        assert "<name>Alpha One</name>" in fragment
        reparsed = load_xml(fragment)
        assert reparsed.count(NodeTest.name_test("name")) == 1

    def test_text_node(self, small_store):
        text = next(
            small_store.axis_records(
                small_store.root_element().key, Axis.DESCENDANT, NodeTest.text()
            )
        )
        assert small_store.serialize_subtree(text.key) == "Alpha One"

    def test_document_node(self, small_store):
        from repro.mass.flexkey import FlexKey

        text = small_store.serialize_subtree(FlexKey.document())
        assert text.startswith("<site>")
        assert text.endswith("</site>")

    def test_escaping(self):
        store = load_xml('<a x="&quot;q&quot;">1 &lt; 2 &amp; 3</a>')
        fragment = store.serialize_subtree(store.root_element().key)
        reparsed = load_xml(fragment)
        assert reparsed.string_value(reparsed.root_element().key) == "1 < 2 & 3"

    def test_full_xmark_round_trip(self):
        original = generate_document(0.001, seed=42)
        store = load_xml(original)
        fragment = store.serialize_subtree(store.root_element().key)
        reindexed = load_xml(fragment)
        assert len(reindexed.node_index) == len(store.node_index)
        assert (
            reindexed.serialize_subtree(reindexed.root_element().key) == fragment
        )
