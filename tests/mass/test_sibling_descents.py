"""Sibling axes must not re-descend the tree once per sibling.

Iterating ``following-sibling`` across every child of one parent used to
cost one root-to-leaf descent per context.  With a shared
:class:`ScanCursors`, consecutive sibling scans land in the pinned leaf's
neighbourhood and resume instead; the counter-based tests here pin that
down so the behaviour can't silently regress.
"""

from __future__ import annotations

import pytest

from repro.mass.axes import ScanCursors
from repro.mass.loader import load_xml
from repro.model import Axis, NodeTest


def _flat_doc(children: int) -> str:
    items = "".join(f"<item><n>v{i}</n></item>" for i in range(children))
    return f"<root>{items}</root>"


def _descents_for(store, axis, contexts, cursors):
    before = store.counters["root_descents"]
    for context in contexts:
        for _ in store.axis(context, axis, NodeTest.node(), cursors=cursors):
            pass
    return store.counters["root_descents"] - before


@pytest.mark.parametrize("axis", [Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING])
def test_shared_cursor_bounds_descents(axis):
    small = load_xml(_flat_doc(20), name=f"sib-small-{axis.name}")
    large = load_xml(_flat_doc(200), name=f"sib-large-{axis.name}")

    def run(store):
        items = [
            record.key
            for record in store.node_index.scan(None, None)
            if record.name == "item"
        ]
        return len(items), _descents_for(
            store, axis, items, ScanCursors(store)
        )

    n_small, d_small = run(small)
    n_large, d_large = run(large)
    assert n_large == 10 * n_small
    # Descents must not scale with the sibling count: without cursor
    # reuse every context costs one (d == n); with it a 10x bigger
    # family stays at a handful, far below one per sibling.
    assert d_large <= d_small * 5 + 10, (d_small, d_large)
    assert d_large <= n_large / 5, (n_large, d_large)


def test_sibling_run_resumes_via_cursor():
    store = load_xml(_flat_doc(100), name="sib-resume")
    items = [
        record.key
        for record in store.node_index.scan(None, None)
        if record.name == "item"
    ]
    cursors = ScanCursors(store)
    before = dict(store.counters)
    for context in items:
        for _ in store.axis(
            context, Axis.FOLLOWING_SIBLING, NodeTest.name_test("item"), cursors=cursors
        ):
            pass
    delta_resumes = store.counters["cursor_resumes"] - before["cursor_resumes"]
    delta_descents = store.counters["root_descents"] - before["root_descents"]
    assert delta_resumes >= len(items) - 5
    assert delta_descents <= 5


def test_without_cursors_descents_grow_linearly():
    """The legacy path really does descend per sibling — the baseline the
    cursor path is measured against."""
    store = load_xml(_flat_doc(100), name="sib-legacy")
    items = [
        record.key
        for record in store.node_index.scan(None, None)
        if record.name == "item"
    ]
    before = store.counters["root_descents"]
    for context in items:
        for _ in store.axis(
            context, Axis.FOLLOWING_SIBLING, NodeTest.name_test("item")
        ):
            pass
    delta = store.counters["root_descents"] - before
    assert delta >= len(items) - 1
