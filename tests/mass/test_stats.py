"""StoreMetrics: per-thread counters that never lose concurrent updates.

The old plain-``int`` counters dropped increments under the query
server's worker pool (two threads' read-modify-write cycles interleave).
The per-thread scheme makes every increment thread-confined; these tests
pin down the exact-count guarantee and the calling-thread semantics the
engine's per-query deltas rely on.
"""

from __future__ import annotations

import threading

from repro.mass.stats import StoreMetrics


def _run_threads(target, count: int) -> None:
    threads = [threading.Thread(target=target) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentIncrements:
    def test_no_increment_is_ever_lost(self):
        metrics = StoreMetrics()
        workers, per_worker = 8, 500

        def worker():
            for _ in range(per_worker):
                metrics.record_fetches += 1
                metrics.axis_requests += 1

        _run_threads(worker, workers)
        totals = metrics.totals()
        assert totals["record_fetches"] == workers * per_worker
        assert totals["axis_requests"] == workers * per_worker

    def test_extra_counters_merge_across_threads(self):
        metrics = StoreMetrics()
        metrics.extra["page_reads"] = 3

        def worker():
            metrics.extra["page_reads"] = metrics.extra.get("page_reads", 0) + 4

        _run_threads(worker, 2)
        assert metrics.snapshot()["page_reads"] == 3
        assert metrics.totals()["page_reads"] == 11


class TestCallingThreadSemantics:
    def test_snapshot_reports_only_the_calling_thread(self):
        metrics = StoreMetrics()
        metrics.record_fetches += 2

        def worker():
            metrics.record_fetches += 5

        _run_threads(worker, 1)
        # Per-query deltas diff snapshot() on the worker that ran the
        # query — another thread's work must not bleed in.
        assert metrics.snapshot()["record_fetches"] == 2
        assert metrics.totals()["record_fetches"] == 7

    def test_setter_routes_to_the_calling_thread(self):
        metrics = StoreMetrics()
        metrics.count_calls = 9
        seen = []

        def worker():
            seen.append(metrics.count_calls)

        _run_threads(worker, 1)
        assert metrics.snapshot()["count_calls"] == 9
        assert seen == [0]


class TestReset:
    def test_reset_clears_every_thread(self):
        metrics = StoreMetrics()
        metrics.value_lookups += 1
        metrics.extra["x"] = 2

        def worker():
            metrics.value_lookups += 3

        _run_threads(worker, 2)
        metrics.reset()
        totals = metrics.totals()
        assert totals["value_lookups"] == 0
        assert "x" not in totals
        assert metrics.snapshot()["value_lookups"] == 0
