"""FLEX key unit and property tests.

The three contract properties (order = document order, parent = prefix,
insert-between without relabeling) carry the whole engine; they get both
example-based and hypothesis coverage here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mass.flexkey import (
    FIRST_ORDINAL,
    FlexKey,
    component_after,
    component_before,
    component_between,
)


@pytest.fixture
def family():
    doc = FlexKey.document()
    root = FlexKey.from_ordinals([0])
    first = root.child(0)
    second = root.child(1)
    grandchild = first.child(0)
    return doc, root, first, second, grandchild


class TestConstruction:
    def test_document_key_is_empty(self):
        assert FlexKey.document().depth == 0
        assert FlexKey.document().is_document()

    def test_document_key_is_singleton_value(self):
        assert FlexKey.document() == FlexKey(())

    def test_from_ordinals_depth(self):
        assert FlexKey.from_ordinals([0, 1, 2]).depth == 3

    def test_from_ordinals_uses_first_ordinal_offset(self):
        key = FlexKey.from_ordinals([0])
        assert key.components == ((FIRST_ORDINAL,),)

    def test_child_extends_by_one_component(self):
        root = FlexKey.from_ordinals([0])
        assert root.child(3).components == root.components + ((3 + FIRST_ORDINAL,),)

    def test_rejects_empty_component(self):
        with pytest.raises(ValueError):
            FlexKey(((),))

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            FlexKey(((0,),))

    def test_rejects_component_ending_in_one(self):
        with pytest.raises(ValueError):
            FlexKey(((2, 1),))

    def test_interior_one_is_allowed(self):
        assert FlexKey(((2, 1, 2),)).depth == 1


class TestDocumentOrder:
    def test_document_before_everything(self, family):
        doc, root, first, second, grandchild = family
        for key in (root, first, second, grandchild):
            assert doc < key

    def test_parent_before_children(self, family):
        _doc, root, first, second, _g = family
        assert root < first < second

    def test_subtree_contiguity(self, family):
        _doc, _root, first, second, grandchild = family
        assert first < grandchild < second

    def test_equality_and_hash(self):
        assert FlexKey.from_ordinals([0, 1]) == FlexKey.from_ordinals([0, 1])
        assert hash(FlexKey.from_ordinals([0, 1])) == hash(FlexKey.from_ordinals([0, 1]))

    def test_total_ordering_helpers(self, family):
        _doc, root, first, _second, _g = family
        assert root <= first and first > root and first >= root and root != first

    def test_comparison_with_other_type(self):
        assert (FlexKey.document() == 42) is False


class TestStructure:
    def test_parent_of_document_is_none(self):
        assert FlexKey.document().parent() is None

    def test_parent_chain(self, family):
        doc, root, first, _second, grandchild = family
        assert grandchild.parent() == first
        assert first.parent() == root
        assert root.parent() == doc

    def test_ancestors_nearest_first(self, family):
        doc, root, first, _second, grandchild = family
        assert list(grandchild.ancestors()) == [first, root, doc]

    def test_is_ancestor_of(self, family):
        doc, root, first, second, grandchild = family
        assert root.is_ancestor_of(grandchild)
        assert doc.is_ancestor_of(root)
        assert not first.is_ancestor_of(second)
        assert not first.is_ancestor_of(first)

    def test_is_descendant_of(self, family):
        _doc, root, first, _second, grandchild = family
        assert grandchild.is_descendant_of(root)
        assert not root.is_descendant_of(grandchild)

    def test_is_parent_of(self, family):
        _doc, root, first, _second, grandchild = family
        assert first.is_parent_of(grandchild)
        assert not root.is_parent_of(grandchild)

    def test_siblings(self, family):
        _doc, _root, first, second, grandchild = family
        assert first.is_sibling_of(second)
        assert not first.is_sibling_of(first)
        assert not first.is_sibling_of(grandchild)

    def test_common_ancestor(self, family):
        doc, root, first, second, grandchild = family
        assert grandchild.common_ancestor(second) == root
        assert first.common_ancestor(first.child(4)) == first
        assert root.common_ancestor(root) == root
        assert grandchild.common_ancestor(doc) == doc


class TestSubtreeBounds:
    def test_bound_above_descendants(self, family):
        _doc, _root, first, second, grandchild = family
        bound = first.subtree_upper_bound()
        assert grandchild < bound
        assert first < bound

    def test_bound_below_following(self, family):
        _doc, _root, first, second, _g = family
        assert first.subtree_upper_bound() < second

    def test_bound_below_inserted_sibling(self, family):
        """Insert-between keys must stay outside the left subtree range."""
        _doc, _root, first, second, _g = family
        inserted = first.sibling_between(second)
        bound = first.subtree_upper_bound()
        assert bound < inserted
        # and descendants created later still fall inside the bound
        assert first.child(99) < bound

    def test_document_has_no_bound(self):
        with pytest.raises(ValueError):
            FlexKey.document().subtree_upper_bound()

    def test_bound_never_equals_stored_key(self, family):
        _doc, _root, first, _second, _g = family
        bound = first.subtree_upper_bound()
        with pytest.raises(ValueError):
            FlexKey(bound.components)  # sentinel 0 is not constructible


class TestInsertion:
    def test_between_is_strictly_between(self, family):
        _doc, _root, first, second, _g = family
        middle = first.sibling_between(second)
        assert first < middle < second
        assert middle.parent() == first.parent()

    def test_between_requires_siblings(self, family):
        _doc, root, first, _second, grandchild = family
        with pytest.raises(ValueError):
            first.sibling_between(grandchild)

    def test_between_requires_order(self, family):
        _doc, _root, first, second, _g = family
        with pytest.raises(ValueError):
            second.sibling_between(first)

    def test_sibling_after(self, family):
        _doc, _root, _first, second, _g = family
        after = second.sibling_after()
        assert second < after and after.parent() == second.parent()

    def test_sibling_before_first(self, family):
        _doc, _root, first, _second, _g = family
        before = first.sibling_before()
        assert before < first and before.parent() == first.parent()
        assert first.parent() < before

    def test_repeated_bisection_never_exhausts(self, family):
        _doc, _root, left, right, _g = family
        for _ in range(200):
            middle = left.sibling_between(right)
            assert left < middle < right
            right = middle

    def test_repeated_bisection_other_side(self, family):
        _doc, _root, left, right, _g = family
        for _ in range(200):
            middle = left.sibling_between(right)
            assert left < middle < right
            left = middle


class TestRendering:
    def test_pretty_document(self):
        assert FlexKey.document().pretty() == "<doc>"

    def test_pretty_uses_letters(self):
        assert FlexKey(((2,), (4,), (25,))).pretty() == "b.d.y"

    def test_pretty_bijective_base26(self):
        assert FlexKey(((26,),)).pretty() == "z"
        assert FlexKey(((27,),)).pretty() == "aa"
        assert FlexKey(((52,),)).pretty() == "az"
        assert FlexKey(((53,),)).pretty() == "ba"

    def test_pretty_extended_component(self):
        assert FlexKey(((2, 2),)).pretty() == "b~b"

    def test_parse_round_trip(self):
        for key in (
            FlexKey.document(),
            FlexKey.from_ordinals([0, 3, 7]),
            FlexKey(((2, 1, 2), (30,))),
        ):
            assert FlexKey.parse(key.pretty()) == key

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FlexKey.parse("A.B")

    def test_repr_contains_pretty(self):
        assert "b.b" in repr(FlexKey.from_ordinals([0, 0]))

    def test_len_is_depth(self):
        assert len(FlexKey.from_ordinals([0, 1, 2])) == 3


class TestComponentArithmetic:
    def test_between_adjacent_integers(self):
        assert component_between((4,), (5,)) == (4, 2)

    def test_between_gap(self):
        middle = component_between((4,), (9,))
        assert (4,) < middle < (9,)

    def test_between_prefix_case(self):
        middle = component_between((4,), (4, 2))
        assert (4,) < middle < (4, 2)
        assert middle[-1] != 1

    def test_between_rejects_wrong_order(self):
        with pytest.raises(ValueError):
            component_between((5,), (4,))

    def test_after_and_before(self):
        assert component_after((7,)) == (8,)
        assert component_before((7,)) == (6,)
        assert component_before((2,)) == (1, 2)

    @given(st.integers(2, 50), st.integers(2, 50))
    def test_between_property_single_ints(self, a, b):
        if a == b:
            return
        low, high = (a,), (b,)
        if low > high:
            low, high = high, low
        middle = component_between(low, high)
        assert low < middle < high
        assert middle[-1] != 1 and all(part >= 1 for part in middle)


# -- hypothesis strategies over whole keys --------------------------------------

_component = st.lists(st.integers(1, 6), min_size=1, max_size=3).map(
    lambda parts: tuple(parts[:-1]) + (parts[-1] + 1,)  # never ends in 1
)
_key = st.lists(_component, min_size=0, max_size=5).map(
    lambda components: FlexKey(tuple(components))
)


class TestKeyProperties:
    @given(_key, _key)
    @settings(max_examples=200)
    def test_ancestor_implies_order_and_prefix(self, a, b):
        if a.is_ancestor_of(b):
            assert a < b
            assert b.components[: len(a.components)] == a.components

    @given(_key)
    @settings(max_examples=200)
    def test_parse_pretty_round_trip(self, key):
        assert FlexKey.parse(key.pretty()) == key

    @given(_key, _key)
    @settings(max_examples=200)
    def test_common_ancestor_is_shared(self, a, b):
        shared = a.common_ancestor(b)
        for key in (a, b):
            assert shared == key or shared.is_ancestor_of(key)

    @given(_key)
    @settings(max_examples=200)
    def test_subtree_bound_dominates_descendants(self, key):
        if key.is_document():
            return
        bound = key.subtree_upper_bound()
        assert key < bound
        assert key.child(0) < bound
        assert key.child(1000) < bound
        assert bound < key.sibling_after()

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=6))
    @settings(max_examples=200)
    def test_ordinal_paths_sort_like_tuples(self, path):
        key = FlexKey.from_ordinals(path)
        longer = FlexKey.from_ordinals(path + [0])
        assert key < longer
        assert key.is_parent_of(longer)
