"""Name/value/node index unit tests (namespacing, counts, scans)."""

from __future__ import annotations

import pytest

from repro.mass.flexkey import FlexKey
from repro.mass.indexes import (
    NameIndex,
    NodeIndex,
    ValueIndex,
    index_name_for,
    index_name_for_test,
)
from repro.mass.pages import BufferPool, PageManager
from repro.mass.records import NodeKind, NodeRecord
from repro.model import NodeTest


def make_env():
    manager = PageManager()
    return manager, BufferPool(manager)


K = FlexKey.from_ordinals


class TestNamespacing:
    def test_element_uses_plain_name(self):
        assert index_name_for(NodeKind.ELEMENT, "person") == "person"

    def test_attribute_prefixed(self):
        assert index_name_for(NodeKind.ATTRIBUTE, "id") == "@id"

    def test_text_and_comment_reserved(self):
        assert index_name_for(NodeKind.TEXT, "") == "#text"
        assert index_name_for(NodeKind.COMMENT, "") == "#comment"

    def test_pi_prefixed(self):
        assert index_name_for(NodeKind.PROCESSING_INSTRUCTION, "php") == "?php"

    def test_document_not_indexed(self):
        assert index_name_for(NodeKind.DOCUMENT, "") is None

    def test_test_mapping_element(self):
        assert index_name_for_test(NodeTest.name_test("a"), NodeKind.ELEMENT) == "a"

    def test_test_mapping_attribute_principal(self):
        assert index_name_for_test(NodeTest.name_test("id"), NodeKind.ATTRIBUTE) == "@id"

    def test_test_mapping_wildcard_needs_scan(self):
        assert index_name_for_test(NodeTest.name_test("*"), NodeKind.ELEMENT) is None
        assert index_name_for_test(NodeTest.node(), NodeKind.ELEMENT) is None

    def test_test_mapping_kind_tests(self):
        assert index_name_for_test(NodeTest.text(), NodeKind.ELEMENT) == "#text"
        assert index_name_for_test(NodeTest.comment(), NodeKind.ELEMENT) == "#comment"
        assert (
            index_name_for_test(NodeTest.processing_instruction("x"), NodeKind.ELEMENT)
            == "?x"
        )
        assert index_name_for_test(NodeTest.processing_instruction(), NodeKind.ELEMENT) is None


class TestNameIndex:
    @pytest.fixture
    def index(self):
        manager, pool = make_env()
        index = NameIndex(manager, pool)
        entries = [
            ("a", K([0, 0]), NodeKind.ELEMENT),
            ("a", K([0, 2]), NodeKind.ELEMENT),
            ("ab", K([0, 1]), NodeKind.ELEMENT),
            ("b", K([0, 3]), NodeKind.ELEMENT),
        ]
        index.bulk_load(sorted(entries, key=lambda entry: (entry[0], entry[1])))
        return index

    def test_count_exact_name(self, index):
        assert index.count("a") == 2
        assert index.count("ab") == 1

    def test_count_no_prefix_bleed(self, index):
        """'a' must not count 'ab' — the upper bound is exclusive."""
        assert index.count("a") + index.count("ab") + index.count("b") == len(index)

    def test_scan_orders_by_key(self, index):
        keys = [key for key, _ in index.scan("a")]
        assert keys == sorted(keys)

    def test_scan_with_bounds(self, index):
        keys = [key for key, _ in index.scan("a", lo=K([0, 1]))]
        assert keys == [K([0, 2])]

    def test_scan_reverse(self, index):
        keys = [key for key, _ in index.scan("a", reverse=True)]
        assert keys == sorted(keys, reverse=True)

    def test_count_between(self, index):
        assert index.count_between("a", K([0, 0]), K([0, 2])) == 1
        assert index.count_between("a", None, None) == 2

    def test_first_seek(self, index):
        assert index.first("a") == K([0, 0])
        assert index.first("a", at_or_after=K([0, 1])) == K([0, 2])
        assert index.first("zz") is None

    def test_insert_delete(self, index):
        index.insert("c", K([0, 4]), NodeKind.ELEMENT)
        assert index.count("c") == 1
        assert index.delete("c", K([0, 4]))
        assert index.count("c") == 0


class TestValueIndex:
    @pytest.fixture
    def index(self):
        manager, pool = make_env()
        index = ValueIndex(manager, pool)
        entries = [
            ("Monroe", K([0, 0]), NodeKind.TEXT),
            ("Monroe", K([0, 5]), NodeKind.ATTRIBUTE),
            ("Quincy", K([0, 2]), NodeKind.TEXT),
            ("Yung Flach", K([0, 3]), NodeKind.TEXT),
        ]
        index.bulk_load(sorted(entries, key=lambda entry: (entry[0], entry[1])))
        return index

    def test_text_count(self, index):
        assert index.text_count("Monroe") == 2
        assert index.text_count("Yung Flach") == 1
        assert index.text_count("missing") == 0

    def test_scan_returns_kinds(self, index):
        kinds = [kind for _key, kind in index.scan("Monroe")]
        assert kinds == [NodeKind.TEXT, NodeKind.ATTRIBUTE]

    def test_value_range_scan(self, index):
        values = [value for value, _key, _kind in index.scan_value_range("Monroe", "Quincy")]
        assert values == ["Monroe", "Monroe", "Quincy"]

    def test_value_range_exclusive(self, index):
        count = index.count_value_range("Monroe", "Quincy", inclusive=False)
        assert count == 2

    def test_value_range_open_ends(self, index):
        assert index.count_value_range(None, None) == 4
        assert index.count_value_range("Q", None) == 2


class TestNodeIndex:
    @pytest.fixture
    def index(self):
        manager, pool = make_env()
        index = NodeIndex(manager, pool)
        records = [
            NodeRecord(FlexKey.document(), NodeKind.DOCUMENT),
            NodeRecord(K([0]), NodeKind.ELEMENT, name="site"),
            NodeRecord(K([0, 0]), NodeKind.ELEMENT, name="person"),
            NodeRecord(K([0, 0, 0]), NodeKind.TEXT, value="x"),
            NodeRecord(K([0, 1]), NodeKind.ELEMENT, name="person"),
        ]
        index.bulk_load(records)
        return index

    def test_get(self, index):
        assert index.get(K([0])).name == "site"
        assert index.get(K([9])) is None

    def test_scan_subtree(self, index):
        root = K([0, 0])
        names = [record.name or record.kind.value for record in index.scan(
            root, root.subtree_upper_bound(), inclusive_lo=False)]
        assert names == ["text"]

    def test_count_range(self, index):
        assert index.count_range(None, None) == 5
        assert index.count_range(K([0, 0]), K([0, 1])) == 2

    def test_reverse_scan(self, index):
        keys = [record.key for record in index.scan(None, None, reverse=True)]
        assert keys == sorted(keys, reverse=True)

    def test_insert_delete(self, index):
        record = NodeRecord(K([0, 2]), NodeKind.ELEMENT, name="item")
        index.insert(record)
        assert index.get(K([0, 2])) == record
        assert index.delete(K([0, 2]))
        assert not index.delete(K([0, 2]))
