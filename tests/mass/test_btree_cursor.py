"""BTreeCursor: resume-instead-of-redescend scans over the counted B+-tree."""

from __future__ import annotations

from repro.mass.btree import BPlusTree, BTreeCursor
from repro.mass.pages import BufferPool, PageManager


def make_tree(order: int = 8, entries: int = 1000) -> BPlusTree:
    manager = PageManager()
    pool = BufferPool(manager, capacity=None)
    tree = BPlusTree(manager, pool, order=order)
    for key in range(entries):
        tree.insert(key, key * 2)
    return tree


class TestScanEquivalence:
    def test_full_scan_matches_scan_encoded(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        assert list(cursor.scan(None, None)) == list(tree.scan_encoded(None, None))

    def test_bounded_scans_match_scan_encoded(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        for lo, hi, ilo, ihi in [
            (100, 200, True, False),
            (100, 200, False, True),
            (0, 1000, True, False),
            (999, None, True, False),
            (None, 5, True, False),
            (500, 500, True, True),
            (700, 600, True, False),  # empty range
        ]:
            expected = list(
                tree.scan_encoded(lo, hi, inclusive_lo=ilo, inclusive_hi=ihi)
            )
            got = list(cursor.scan(lo, hi, inclusive_lo=ilo, inclusive_hi=ihi))
            assert got == expected, (lo, hi, ilo, ihi)

    def test_reverse_scans_match_scan_reverse_encoded(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        for lo, hi, ilo, ihi in [
            (100, 200, True, False),
            (100, 200, False, True),
            (None, 50, True, True),
            (950, None, True, False),
        ]:
            expected = list(
                tree.scan_reverse_encoded(lo, hi, inclusive_lo=ilo, inclusive_hi=ihi)
            )
            got = list(
                cursor.scan_reverse(lo, hi, inclusive_lo=ilo, inclusive_hi=ihi)
            )
            assert got == expected, (lo, hi, ilo, ihi)

    def test_empty_tree_scans_nothing(self):
        manager = PageManager()
        tree = BPlusTree(manager, BufferPool(manager, capacity=None), order=8)
        cursor = BTreeCursor(tree)
        assert list(cursor.scan(None, None)) == []
        assert list(cursor.scan_reverse(None, None)) == []


class TestResume:
    def test_nearby_ranges_resume_without_descending(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        tree.metrics.reset()
        # One descent to position, then a run of adjacent short ranges —
        # exactly the shape axis evaluation produces.
        for lo in range(100, 400, 3):
            list(cursor.scan(lo, lo + 3))
        assert tree.metrics.cursor_resumes > 0
        # The first range descends; nearly every later one resumes.
        assert tree.metrics.root_descents <= 5

    def test_distant_seek_falls_back_to_descent(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        list(cursor.scan(0, 3))
        tree.metrics.reset()
        list(cursor.scan(900, 903))  # far from the pinned leaf
        assert tree.metrics.root_descents == 1

    def test_past_skips_covered_range(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        list(cursor.scan(500, 510))
        # Cursor is pinned at >= 510; any range ending at or before that
        # bound is provably behind it.
        assert cursor.past(505)
        assert cursor.past(510)
        assert not cursor.past(900)

    def test_fresh_cursor_is_never_past(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        assert not cursor.past(0)


class TestInvalidation:
    def test_insert_invalidates_pin(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        list(cursor.scan(100, 110))
        tree.insert(105, -1)  # bumps _mods
        assert not cursor.past(100)
        tree.metrics.reset()
        list(cursor.scan(110, 120))
        assert tree.metrics.cursor_resumes == 0
        assert tree.metrics.root_descents >= 1

    def test_scan_after_modification_stays_correct(self):
        tree = make_tree(entries=200)
        cursor = BTreeCursor(tree)
        list(cursor.scan(50, 60))
        for key in range(200, 260):
            tree.insert(key, key * 2)
        tree.delete(55)
        expected = list(tree.scan_encoded(40, 240))
        assert list(cursor.scan(40, 240)) == expected

    def test_abandoned_scan_does_not_clobber_newer_position(self):
        tree = make_tree()
        cursor = BTreeCursor(tree)
        stale = cursor.scan(100, 900)
        next(stale)  # partially consumed, then abandoned
        list(cursor.scan(500, 510))  # newer scan repositions the cursor
        del stale  # finalizer runs; token mismatch must keep the new pin
        assert cursor.past(505)
        assert not cursor.past(900)
