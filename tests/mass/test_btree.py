"""Counted B+-tree unit and property tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.mass.btree import BPlusTree
from repro.mass.pages import BufferPool, PageManager


def make_tree(order: int = 8, capacity: int | None = None) -> BPlusTree:
    manager = PageManager()
    pool = BufferPool(manager, capacity=capacity)
    return BPlusTree(manager, pool, order=order)


@pytest.fixture
def thousand():
    tree = make_tree()
    for key in range(1000):
        tree.insert(key, key * 2)
    return tree


class TestBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.get(1) is None
        assert list(tree.scan()) == []
        assert list(tree.scan_reverse()) == []
        assert tree.first() is None and tree.last() is None
        assert tree.range_count() == 0
        tree.check_invariants()

    def test_single_entry(self):
        tree = make_tree()
        tree.insert("k", "v")
        assert tree.get("k") == "v"
        assert len(tree) == 1
        assert tree.first() == ("k", "v") == tree.last()

    def test_replace_value(self):
        tree = make_tree()
        tree.insert(5, "old")
        tree.insert(5, "new")
        assert tree.get(5) == "new"
        assert len(tree) == 1

    def test_contains(self, thousand):
        assert 500 in thousand
        assert 1000 not in thousand

    def test_get_default(self, thousand):
        assert thousand.get(5000, "fallback") == "fallback"

    def test_order_validation(self):
        manager = PageManager()
        with pytest.raises(StorageError):
            BPlusTree(manager, BufferPool(manager), order=2)

    def test_order_derived_from_page_size(self):
        manager = PageManager(page_size=4096)
        tree = BPlusTree(manager, BufferPool(manager), entry_bytes=64)
        assert tree.order == 64

    def test_height_grows(self):
        tree = make_tree(order=4)
        heights = set()
        for key in range(200):
            tree.insert(key)
            heights.add(tree.height())
        assert max(heights) >= 3


class TestScans:
    def test_full_forward_scan_sorted(self, thousand):
        keys = [key for key, _ in thousand.scan()]
        assert keys == list(range(1000))

    def test_full_reverse_scan(self, thousand):
        keys = [key for key, _ in thousand.scan_reverse()]
        assert keys == list(range(999, -1, -1))

    def test_range_default_half_open(self, thousand):
        assert [k for k, _ in thousand.scan(10, 15)] == [10, 11, 12, 13, 14]

    def test_range_exclusive_lo(self, thousand):
        assert [k for k, _ in thousand.scan(10, 15, inclusive_lo=False)] == [11, 12, 13, 14]

    def test_range_inclusive_hi(self, thousand):
        assert [k for k, _ in thousand.scan(10, 15, inclusive_hi=True)] == list(range(10, 16))

    def test_reverse_range(self, thousand):
        assert [k for k, _ in thousand.scan_reverse(10, 15)] == [14, 13, 12, 11, 10]

    def test_reverse_range_bounds_flags(self, thousand):
        got = [k for k, _ in thousand.scan_reverse(10, 15, inclusive_lo=False, inclusive_hi=True)]
        assert got == [15, 14, 13, 12, 11]

    def test_scan_open_lo(self, thousand):
        assert [k for k, _ in thousand.scan(hi=3)] == [0, 1, 2]

    def test_scan_open_hi(self, thousand):
        assert [k for k, _ in thousand.scan(lo=997)] == [997, 998, 999]

    def test_scan_missing_bounds_keys(self, thousand):
        """Bounds need not be stored keys."""
        tree = make_tree()
        for key in range(0, 100, 10):
            tree.insert(key)
        assert [k for k, _ in tree.scan(5, 35)] == [10, 20, 30]
        assert [k for k, _ in tree.scan_reverse(5, 35)] == [30, 20, 10]

    def test_seek(self, thousand):
        assert next(iter(thousand.seek(500)))[0] == 500

    def test_empty_range(self, thousand):
        assert list(thousand.scan(500, 500)) == []

    def test_scan_values(self, thousand):
        assert [v for _, v in thousand.scan(0, 3)] == [0, 2, 4]


class TestCounting:
    def test_rank(self, thousand):
        assert thousand.rank(0) == 0
        assert thousand.rank(500) == 500
        assert thousand.rank(500, inclusive=True) == 501
        assert thousand.rank(10_000) == 1000

    def test_range_count_matches_scan(self, thousand):
        rng = random.Random(7)
        for _ in range(50):
            lo = rng.randint(-10, 1010)
            hi = rng.randint(-10, 1010)
            if lo > hi:
                lo, hi = hi, lo
            expected = len(list(thousand.scan(lo, hi)))
            assert thousand.range_count(lo, hi) == expected

    def test_count_does_not_touch_interior_leaves(self):
        """The counted descent must visit O(height) nodes, not O(n)."""
        tree = make_tree(order=8)
        tree.bulk_load([(key, None) for key in range(10_000)])
        tree.metrics.reset()
        tree.range_count(100, 9_900)
        assert tree.metrics.node_visits <= 4 * tree.height()
        assert tree.metrics.entries_scanned == 0

    def test_count_open_bounds(self, thousand):
        assert thousand.range_count() == 1000
        assert thousand.range_count(lo=990) == 10
        assert thousand.range_count(hi=10) == 10

    def test_count_inclusive_hi(self, thousand):
        assert thousand.range_count(0, 9, inclusive_hi=True) == 10


class TestDelete:
    def test_delete_present(self, thousand):
        assert thousand.delete(500)
        assert thousand.get(500) is None
        assert len(thousand) == 999
        thousand.check_invariants()

    def test_delete_absent(self, thousand):
        assert not thousand.delete(5000)
        assert len(thousand) == 1000

    def test_delete_all(self):
        tree = make_tree(order=4)
        for key in range(100):
            tree.insert(key)
        for key in range(100):
            assert tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0
        assert list(tree.scan()) == []

    def test_counts_stay_exact_after_deletes(self, thousand):
        for key in range(0, 1000, 2):
            thousand.delete(key)
        assert thousand.range_count(0, 1000) == 500
        assert thousand.rank(501) == 250

    def test_delete_then_reinsert(self, thousand):
        thousand.delete(500)
        thousand.insert(500, "back")
        assert thousand.get(500) == "back"
        thousand.check_invariants()

    def test_reverse_scan_after_heavy_deletes(self):
        tree = make_tree(order=4)
        for key in range(200):
            tree.insert(key)
        for key in range(0, 200, 3):
            tree.delete(key)
        expected = sorted(set(range(200)) - set(range(0, 200, 3)), reverse=True)
        assert [k for k, _ in tree.scan_reverse()] == expected


class TestBulkLoad:
    def test_bulk_load_round_trip(self):
        tree = make_tree()
        tree.bulk_load([(key, str(key)) for key in range(5000)])
        tree.check_invariants()
        assert len(tree) == 5000
        assert tree.get(4321) == "4321"

    def test_bulk_load_replaces(self, thousand):
        thousand.bulk_load([(1, "one")])
        assert len(thousand) == 1
        assert thousand.get(1) == "one"

    def test_bulk_load_empty(self):
        tree = make_tree()
        tree.bulk_load([])
        assert len(tree) == 0
        tree.check_invariants()

    def test_bulk_load_rejects_unsorted(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.bulk_load([(2, None), (1, None)])

    def test_bulk_load_rejects_duplicates(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.bulk_load([(1, None), (1, None)])

    def test_insert_after_bulk_load(self):
        tree = make_tree()
        tree.bulk_load([(key, None) for key in range(0, 100, 2)])
        for key in range(1, 100, 2):
            tree.insert(key)
        tree.check_invariants()
        assert [k for k, _ in tree.scan()] == list(range(100))

    def test_bulk_load_frees_old_pages(self):
        manager = PageManager()
        tree = BPlusTree(manager, BufferPool(manager), order=8)
        for key in range(1000):
            tree.insert(key)
        pages_before = manager.live_pages
        tree.bulk_load([(key, None) for key in range(10)])
        assert manager.live_pages < pages_before


class TestPaging:
    def test_buffer_pool_hits(self):
        tree = make_tree(order=8)
        tree.bulk_load([(key, None) for key in range(10_000)])
        pool = tree._buffer
        pool.stats.reset()
        for _ in range(10):
            tree.get(5000)
        assert pool.stats.hits > 0

    def test_cold_cache_counts_physical_reads(self):
        manager = PageManager()
        pool = BufferPool(manager, capacity=0)
        tree = BPlusTree(manager, pool, order=8)
        tree.bulk_load([(key, None) for key in range(1000)])
        manager.stats.reset_io()
        tree.get(500)
        assert manager.stats.physical_reads == manager.stats.logical_reads > 0

    def test_lru_eviction(self):
        manager = PageManager()
        pool = BufferPool(manager, capacity=4)
        tree = BPlusTree(manager, pool, order=4)
        tree.bulk_load([(key, None) for key in range(500)])
        pool.stats.reset()
        list(tree.scan())
        assert pool.stats.evictions > 0
        assert pool.resident_pages <= 4


class TestRandomized:
    def test_random_against_dict(self):
        rng = random.Random(99)
        tree = make_tree(order=6)
        model: dict[int, int] = {}
        for step in range(3000):
            key = rng.randint(0, 400)
            if rng.random() < 0.6:
                tree.insert(key, step)
                model[key] = step
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        tree.check_invariants()
        assert sorted(model.items()) == list(tree.scan())

    @given(st.lists(st.integers(0, 200), max_size=80), st.lists(st.integers(0, 200), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_insert_delete_property(self, inserts, deletes):
        tree = make_tree(order=4)
        model: dict[int, None] = {}
        for key in inserts:
            tree.insert(key)
            model[key] = None
        for key in deletes:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        tree.check_invariants()
        assert [key for key, _ in tree.scan()] == sorted(model)

    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=120, unique=True),
        st.integers(-10, 1010),
        st.integers(-10, 1010),
    )
    @settings(max_examples=80, deadline=None)
    def test_range_count_property(self, keys, lo, hi):
        tree = make_tree(order=5)
        tree.bulk_load([(key, None) for key in sorted(keys)])
        if lo > hi:
            lo, hi = hi, lo
        expected = sum(1 for key in keys if lo <= key < hi)
        assert tree.range_count(lo, hi) == expected
