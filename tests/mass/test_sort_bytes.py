"""Property tests for the order-preserving FLEX byte encoding.

The whole byte-key mode rests on one invariant: for any two keys,
``a < b  iff  a.sort_bytes < b.sort_bytes``.  These tests check it over
random keys (including multi-byte integers), keys minted between
siblings with :func:`component_between`, and the ``subtree_upper_bound``
sentinel, plus the prefix property that byte-ancestry equals key
ancestry.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mass.flexkey import (
    FlexKey,
    component_between,
    encode_components,
)

# Integers span one-byte and multi-byte payloads (the 0xFF..0x100 and
# 0xFFFF..0x10000 length-class boundaries are where an encoding breaks
# first if it is going to).
_part = st.one_of(
    st.integers(1, 6),
    st.integers(250, 260),
    st.integers(65530, 65545),
    st.integers(2**32 - 3, 2**32 + 3),
)
_component = st.lists(_part, min_size=1, max_size=3).map(
    lambda parts: tuple(parts[:-1]) + (parts[-1] + 1,)  # never ends in 1
)
_key = st.lists(_component, min_size=0, max_size=5).map(
    lambda components: FlexKey(tuple(components))
)


class TestOrderEquivalence:
    @given(_key, _key)
    @settings(max_examples=400)
    def test_byte_order_equals_tuple_order(self, a, b):
        assert (a < b) == (a.sort_bytes < b.sort_bytes)
        assert (a == b) == (a.sort_bytes == b.sort_bytes)

    @given(_key, _key)
    @settings(max_examples=400)
    def test_byte_prefix_equals_ancestry(self, a, b):
        is_prefix = a.sort_bytes == b.sort_bytes[: len(a.sort_bytes)]
        assert is_prefix == (a == b or a.is_ancestor_of(b))

    @given(_key)
    @settings(max_examples=200)
    def test_sort_bytes_is_cached_and_stable(self, key):
        assert key.sort_bytes is key.sort_bytes
        assert key.sort_bytes == encode_components(key.components)


class TestSubtreeBound:
    @given(_key)
    @settings(max_examples=300)
    def test_sentinel_bound_bytes_match_sentinel_key(self, key):
        if key.is_document():
            return
        bound = key.subtree_upper_bound()
        assert bound.sort_bytes == key.subtree_upper_bound_bytes()

    @given(_key)
    @settings(max_examples=300)
    def test_bound_bytes_dominate_descendant_bytes(self, key):
        if key.is_document():
            return
        bound = key.subtree_upper_bound_bytes()
        assert key.sort_bytes < bound
        assert key.child(0).sort_bytes < bound
        assert key.child(10**6).sort_bytes < bound
        assert bound < key.sibling_after().sort_bytes

    def test_document_key_has_no_bound_bytes(self):
        with pytest.raises(ValueError):
            FlexKey.document().subtree_upper_bound_bytes()


class TestInsertsBetween:
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=5))
    @settings(max_examples=200)
    def test_sibling_between_orders_in_bytes(self, path):
        first = FlexKey.from_ordinals(path)
        second = first.sibling_after()
        middle = first.sibling_between(second)
        keys = [first, middle, second]
        assert [k.sort_bytes for k in keys] == sorted(k.sort_bytes for k in keys)

    def test_repeated_splits_stay_sorted(self):
        # Repeatedly mint keys between adjacent siblings: components grow
        # extended tails via component_between, the encoding must keep
        # byte order aligned with tuple order throughout.
        rng = random.Random(13)
        parent = FlexKey.from_ordinals([0])
        keys = [parent.child(0), parent.child(1)]
        for _ in range(300):
            index = rng.randrange(len(keys) - 1)
            low, high = keys[index], keys[index + 1]
            keys.insert(index + 1, low.sibling_between(high))
        assert all(a < b for a, b in zip(keys, keys[1:]))
        encoded = [key.sort_bytes for key in keys]
        assert encoded == sorted(encoded)
        assert len(set(encoded)) == len(encoded)

    @given(st.integers(2, 10**6), st.integers(2, 10**6))
    @settings(max_examples=200)
    def test_component_between_encodes_between(self, a, b):
        if a == b:
            return
        low, high = sorted(((a,), (b,)))
        middle = component_between(low, high)
        enc = lambda component: encode_components((component,))
        assert enc(low) < enc(middle) < enc(high)


class TestEncodeComponents:
    def test_sentinel_zero_sorts_below_any_real_part(self):
        # enc(0) = 01 00 must order below every positive integer encoding.
        zero = encode_components(((0,),))
        one = encode_components(((1,),))
        big = encode_components(((2**40,),))
        assert zero < one < big

    def test_multibyte_boundaries_are_ordered(self):
        values = [1, 0xFE, 0xFF, 0x100, 0xFFFF, 0x10000, 2**32, 2**64]
        encoded = [encode_components(((value + 1,),)) for value in values]
        assert encoded == sorted(encoded)

    def test_oversized_integer_rejected(self):
        with pytest.raises(ValueError):
            encode_components(((1 << (8 * 0xFF),),))
