"""Page manager and buffer pool unit tests."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.mass.pages import BufferPool, Page, PageKind, PageManager


class TestPageManager:
    def test_allocate_assigns_unique_ids(self):
        manager = PageManager()
        pages = [manager.allocate(PageKind.LEAF) for _ in range(10)]
        assert len({page.page_id for page in pages}) == 10

    def test_live_page_accounting(self):
        manager = PageManager()
        page = manager.allocate(PageKind.LEAF)
        assert manager.live_pages == 1
        manager.free(page)
        assert manager.live_pages == 0
        assert manager.stats.allocated == 1 and manager.stats.freed == 1

    def test_double_free_rejected(self):
        manager = PageManager()
        page = manager.allocate(PageKind.INTERNAL)
        manager.free(page)
        with pytest.raises(StorageError):
            manager.free(page)

    def test_get_unknown_page(self):
        manager = PageManager()
        with pytest.raises(StorageError):
            manager.get(404)

    def test_get_known_page(self):
        manager = PageManager()
        page = manager.allocate(PageKind.LEAF, payload="x")
        assert manager.get(page.page_id) is page

    def test_minimum_page_size(self):
        with pytest.raises(StorageError):
            PageManager(page_size=64)

    def test_mark_write_counts(self):
        manager = PageManager()
        page = manager.allocate(PageKind.LEAF)
        manager.mark_write(page)
        manager.mark_write(page)
        assert manager.stats.writes == 2

    def test_reset_io_keeps_population(self):
        manager = PageManager()
        manager.allocate(PageKind.LEAF)
        manager.stats.logical_reads = 5
        manager.stats.reset_io()
        assert manager.stats.logical_reads == 0
        assert manager.stats.allocated == 1


class TestBufferPool:
    def make(self, capacity):
        manager = PageManager()
        return manager, BufferPool(manager, capacity=capacity)

    def test_first_touch_is_miss_second_is_hit(self):
        manager, pool = self.make(capacity=8)
        page = manager.allocate(PageKind.LEAF)
        pool.touch(page)
        pool.touch(page)
        assert pool.stats.misses == 1 and pool.stats.hits == 1
        assert manager.stats.physical_reads == 1
        assert manager.stats.logical_reads == 2

    def test_zero_capacity_never_hits(self):
        manager, pool = self.make(capacity=0)
        page = manager.allocate(PageKind.LEAF)
        for _ in range(5):
            pool.touch(page)
        assert pool.stats.hits == 0 and pool.stats.misses == 5

    def test_unbounded_capacity_never_evicts(self):
        manager, pool = self.make(capacity=None)
        pages = [manager.allocate(PageKind.LEAF) for _ in range(100)]
        for page in pages:
            pool.touch(page)
        assert pool.stats.evictions == 0
        assert pool.resident_pages == 100

    def test_lru_eviction_order(self):
        manager, pool = self.make(capacity=2)
        a, b, c = (manager.allocate(PageKind.LEAF) for _ in range(3))
        pool.touch(a)
        pool.touch(b)
        pool.touch(a)  # a becomes MRU
        pool.touch(c)  # evicts b
        pool.touch(a)
        assert pool.stats.hits == 2  # the second a-touch and the last one
        pool.touch(b)  # must be a miss again
        assert pool.stats.misses == 4

    def test_hit_ratio(self):
        manager, pool = self.make(capacity=8)
        page = manager.allocate(PageKind.LEAF)
        pool.touch(page)
        pool.touch(page)
        pool.touch(page)
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_empty(self):
        _manager, pool = self.make(capacity=8)
        assert pool.stats.hit_ratio == 0.0

    def test_evict_all(self):
        manager, pool = self.make(capacity=8)
        page = manager.allocate(PageKind.LEAF)
        pool.touch(page)
        pool.evict_all()
        pool.touch(page)
        assert pool.stats.misses == 2

    def test_forget_freed_page(self):
        manager, pool = self.make(capacity=8)
        page = manager.allocate(PageKind.LEAF)
        pool.touch(page)
        pool.forget(page)
        assert pool.resident_pages == 0


class TestBufferPoolPressure:
    """Eviction behaviour under sustained capacity pressure."""

    def make(self, capacity):
        manager = PageManager()
        return manager, BufferPool(manager, capacity=capacity)

    def test_eviction_follows_recency_order(self):
        manager, pool = self.make(capacity=3)
        pages = [manager.allocate(PageKind.LEAF) for _ in range(5)]
        a, b, c, d, e = pages
        for page in (a, b, c):
            pool.touch(page)
        pool.touch(b)  # recency now a < c < b
        pool.touch(d)  # evicts a
        pool.touch(e)  # evicts c
        assert pool.stats.evictions == 2
        assert pool.resident_pages == 3
        pool.touch(b)
        pool.touch(d)
        pool.touch(e)
        assert pool.stats.misses == 5  # b, d, e all still resident
        pool.touch(a)
        pool.touch(c)
        assert pool.stats.misses == 7  # the evicted two really left

    def test_sweep_larger_than_capacity_evicts_every_round(self):
        manager, pool = self.make(capacity=4)
        pages = [manager.allocate(PageKind.LEAF) for _ in range(8)]
        for _ in range(3):
            for page in pages:
                pool.touch(page)
        # A sequential sweep over 2x capacity with LRU hits nothing.
        assert pool.stats.hits == 0
        assert pool.stats.misses == 24
        assert pool.stats.evictions == 24 - 4
        assert manager.stats.physical_reads == 24

    def test_forget_frees_a_slot_without_counting_eviction(self):
        manager, pool = self.make(capacity=2)
        a, b, c = (manager.allocate(PageKind.LEAF) for _ in range(3))
        pool.touch(a)
        pool.touch(b)
        manager.free(b)
        pool.forget(b)
        assert pool.resident_pages == 1
        pool.touch(c)  # fits into the freed slot
        assert pool.stats.evictions == 0
        pool.touch(a)
        assert pool.stats.hits == 1  # a was never pushed out

    def test_forget_unknown_page_is_noop(self):
        manager, pool = self.make(capacity=2)
        page = manager.allocate(PageKind.LEAF)
        pool.forget(page)  # never touched: nothing to drop
        assert pool.resident_pages == 0

    def test_zero_capacity_cold_cache_accounting(self):
        manager, pool = self.make(capacity=0)
        pages = [manager.allocate(PageKind.LEAF) for _ in range(4)]
        for _ in range(2):
            for page in pages:
                pool.touch(page)
        assert pool.resident_pages == 0
        assert pool.stats.hits == 0
        assert pool.stats.misses == 8
        assert pool.stats.evictions == 0
        assert manager.stats.logical_reads == 8
        assert manager.stats.physical_reads == 8  # every touch goes to "disk"
