"""Loader: event stream → indexed store, key assignment, node kinds."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_document, load_events, load_xml
from repro.mass.records import NodeKind
from repro.model import Axis, NodeTest
from repro.xmlkit.events import Characters, EndElement, StartElement


class TestKeyAssignment:
    def test_document_node_first(self):
        store = load_xml("<a/>")
        records = list(store.node_index.scan(None, None))
        assert records[0].kind is NodeKind.DOCUMENT
        assert records[0].key == FlexKey.document()

    def test_root_element_is_first_child(self):
        store = load_xml("<a/>")
        root = store.root_element()
        assert root.key == FlexKey.document().child(0)

    def test_attributes_precede_content_children(self):
        store = load_xml('<a x="1"><b/></a>')
        root = store.root_element()
        children = list(
            store.node_index.scan(
                root.key, root.key.subtree_upper_bound(), inclusive_lo=False
            )
        )
        assert [record.kind for record in children] == [
            NodeKind.ATTRIBUTE,
            NodeKind.ELEMENT,
        ]
        assert children[0].key < children[1].key

    def test_document_order_equals_source_order(self):
        store = load_xml("<a><b>t1</b><c>t2<d/></c></a>")
        names = [
            record.name or record.value
            for record in store.node_index.scan(None, None)
        ][1:]
        assert names == ["a", "b", "t1", "c", "t2", "d"]

    def test_adjacent_text_merges(self):
        events = [
            StartElement("a"),
            Characters("one "),
            Characters("two"),
            EndElement("a"),
        ]
        store = load_events(events)
        texts = list(
            store.axis_records(FlexKey.document(), Axis.DESCENDANT, NodeTest.text())
        )
        assert len(texts) == 1
        assert texts[0].value == "one two"


class TestNodeKinds:
    def test_comment_and_pi(self):
        store = load_xml("<a><!-- hi --><?target data?></a>")
        assert store.count(NodeTest.comment()) == 1
        pi = next(
            store.axis_records(
                FlexKey.document(),
                Axis.DESCENDANT,
                NodeTest.processing_instruction("target"),
            )
        )
        assert pi.value == "data"

    def test_namespace_declarations_become_namespace_nodes(self):
        store = load_xml('<a xmlns="urn:d" xmlns:p="urn:p"><p:b/></a>')
        root = store.root_element()
        namespaces = list(store.axis_records(root.key, Axis.NAMESPACE, NodeTest.node()))
        assert {record.name for record in namespaces} == {"", "p"}
        assert {record.value for record in namespaces} == {"urn:d", "urn:p"}
        # namespace nodes are invisible to the attribute axis
        assert list(store.axis_records(root.key, Axis.ATTRIBUTE, NodeTest.node())) == []

    def test_attribute_values_indexed(self):
        store = load_xml('<a id="unique-val"/>')
        assert store.text_count("unique-val") == 1


class TestEntryPoints:
    def test_load_document_from_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>x</b></a>", encoding="utf-8")
        store = load_document(str(path))
        assert store.count(NodeTest.name_test("b")) == 1
        assert store.name == str(path)

    def test_store_options_forwarded(self):
        store = load_xml("<a/>", page_size=1024, buffer_capacity=16)
        assert store.pages.page_size == 1024
        assert store.buffer.capacity == 16

    def test_bulk_load_rejects_out_of_order(self):
        from repro.mass.records import NodeRecord
        from repro.mass.store import MassStore

        store = MassStore()
        records = [
            NodeRecord(FlexKey.from_ordinals([1]), NodeKind.ELEMENT, name="b"),
            NodeRecord(FlexKey.from_ordinals([0]), NodeKind.ELEMENT, name="a"),
        ]
        with pytest.raises(StorageError):
            store.bulk_load(records)

    def test_large_flat_document(self):
        text = "<root>" + "".join(f"<leaf>{i}</leaf>" for i in range(2000)) + "</root>"
        store = load_xml(text)
        assert store.count(NodeTest.name_test("leaf")) == 2000
        assert store.node_index.tree.height() >= 2

    def test_deep_document(self):
        depth = 200
        text = "".join(f"<n{i}>" for i in range(depth)) + "x" + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        store = load_xml(text)
        deepest = next(
            store.axis_records(FlexKey.document(), Axis.DESCENDANT, NodeTest.text())
        )
        assert deepest.key.depth == depth + 1
        assert len(list(deepest.key.ancestors())) == depth + 1
