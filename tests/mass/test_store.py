"""MassStore facade: counts, string values, updates, metrics."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.mass.records import NodeKind, NodeRecord
from repro.model import Axis, NodeTest

NT = NodeTest.name_test


@pytest.fixture
def store():
    return load_xml(
        """<site>
        <person id="p0"><name>Ada</name><address><city>Monroe</city></address></person>
        <person id="p1"><name>Grace</name></person>
        <item id="i0"><name>Gear</name></item>
        <!-- note --><?pi data?>
        </site>"""
    )


class TestCounts:
    def test_element_counts(self, store):
        assert store.count(NT("person")) == 2
        assert store.count(NT("name")) == 3
        assert store.count(NT("missing")) == 0

    def test_wildcard_counts_elements_only(self, store):
        assert store.count(NT("*")) == 9

    def test_node_count_includes_everything(self, store):
        assert store.count(NodeTest.node()) == len(store.node_index)

    def test_text_kind_count(self, store):
        assert store.count(NodeTest.text()) == 4

    def test_comment_and_pi_counts(self, store):
        assert store.count(NodeTest.comment()) == 1
        assert store.count(NodeTest.processing_instruction("pi")) == 1
        assert store.count(NodeTest.processing_instruction()) == 1

    def test_attribute_count_via_principal(self, store):
        assert store.count(NT("id"), principal=NodeKind.ATTRIBUTE) == 3
        assert store.count(NT("id")) == 0  # no element named id

    def test_text_count(self, store):
        assert store.text_count("Ada") == 1
        assert store.text_count("p0") == 1  # attribute values are indexed
        assert store.text_count("zzz") == 0

    def test_count_under_subtree(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        assert store.count_under(person.key, NT("name")) == 1
        assert store.count_under(FlexKey.document(), NT("name")) == 3

    def test_count_under_wildcard_scans(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        assert store.count_under(person.key, NT("*")) == 3  # name, address, city


class TestAccess:
    def test_root_element(self, store):
        assert store.root_element().name == "site"

    def test_document_record(self, store):
        assert store.document_record().kind is NodeKind.DOCUMENT

    def test_require_unknown_raises(self, store):
        with pytest.raises(StorageError):
            store.require(FlexKey.from_ordinals([5, 5, 5]))

    def test_fetch_counts_metric(self, store):
        store.reset_metrics()
        store.fetch(FlexKey.document())
        assert store.metrics.record_fetches == 1

    def test_string_value_element(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        assert store.string_value(person.key) == "AdaMonroe"

    def test_string_value_text_and_attribute(self, store):
        text = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NodeTest.text()))
        assert store.string_value(text.key) == "Ada"
        attr = next(
            store.axis_records(
                store.root_element().key.child(0), Axis.ATTRIBUTE, NT("*")
            )
        )
        assert store.string_value(attr.key) == "p0"

    def test_string_value_document(self, store):
        assert "Ada" in store.string_value(FlexKey.document())

    def test_value_keys_in_document_order(self, store):
        keys = [key for key, _kind in store.value_keys("Ada")]
        assert keys == sorted(keys)


class TestUpdates:
    def test_insert_element_appends(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        key = store.insert_element(person.key, "phone", "555")
        children = [r.name for r in store.axis_records(person.key, Axis.CHILD, NT("*"))]
        assert children == ["name", "address", "phone"]
        assert store.count(NT("phone")) == 1
        assert store.text_count("555") == 1
        assert key.parent() == person.key

    def test_insert_element_after_sibling(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        name = next(store.axis_records(person.key, Axis.CHILD, NT("name")))
        store.insert_element(person.key, "email", "a@b", after=name.key)
        children = [r.name for r in store.axis_records(person.key, Axis.CHILD, NT("*"))]
        assert children == ["name", "email", "address"]

    def test_insert_after_requires_child(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        with pytest.raises(StorageError):
            store.insert_element(FlexKey.document(), "x", after=person.key.child(0))

    def test_insert_duplicate_key_rejected(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        with pytest.raises(StorageError):
            store.insert_record(NodeRecord(person.key, NodeKind.ELEMENT, name="dup"))

    def test_insert_orphan_rejected(self, store):
        with pytest.raises(StorageError):
            store.insert_record(
                NodeRecord(FlexKey.from_ordinals([9, 9]), NodeKind.ELEMENT, name="x")
            )

    def test_delete_subtree_updates_all_indexes(self, store):
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        removed = store.delete_subtree(person.key)
        assert removed == 7  # person, @id, name, text, address, city, text
        assert store.count(NT("person")) == 1
        assert store.text_count("Ada") == 0
        assert store.text_count("Monroe") == 0

    def test_counts_exact_after_update_burst(self, store):
        """The 'statistics stay accurate under updates' claim, in miniature."""
        root = store.root_element().key
        for index in range(20):
            store.insert_element(root, "extra", f"value{index}")
        assert store.count(NT("extra")) == 20
        extras = [r.key for r in store.axis_records(root, Axis.CHILD, NT("extra"))]
        for key in extras[::2]:
            store.delete_subtree(key)
        assert store.count(NT("extra")) == 10
        assert store.text_count("value0") == 0
        assert store.text_count("value1") == 1

    def test_insert_between_preserves_axis_order(self, store):
        """Keys minted between siblings keep every axis consistent."""
        person = next(store.axis_records(FlexKey.document(), Axis.DESCENDANT, NT("person")))
        name = next(store.axis_records(person.key, Axis.CHILD, NT("name")))
        for index in range(10):
            store.insert_element(person.key, "tag", str(index), after=name.key)
        children = [r for r in store.axis_records(person.key, Axis.CHILD, NT("tag"))]
        values = [store.string_value(r.key) for r in children]
        assert values == [str(i) for i in reversed(range(10))]
        siblings = [
            r.name
            for r in store.axis_records(name.key, Axis.FOLLOWING_SIBLING, NT("*"))
        ]
        assert siblings == ["tag"] * 10 + ["address"]


class TestReporting:
    def test_statistics_snapshot(self, store):
        stats = store.statistics()
        assert stats.total_nodes == len(store.node_index)
        assert stats.elements == 9
        assert stats.attributes == 3
        assert stats.pages == store.pages.live_pages
        assert stats.tuples_per_page > 0
        assert "elements" in stats.describe()

    def test_io_snapshot_keys(self, store):
        snapshot = store.io_snapshot()
        for key in ("record_fetches", "pages_read", "key_comparisons", "entries_scanned"):
            assert key in snapshot

    def test_reset_metrics(self, store):
        store.fetch(FlexKey.document())
        store.reset_metrics()
        snapshot = store.io_snapshot()
        assert snapshot["record_fetches"] == 0
        assert snapshot["logical_reads"] == 0

    def test_repr(self, store):
        assert "MassStore" in repr(store)
