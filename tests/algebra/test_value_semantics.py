"""XPath 1.0 value model: conversions, comparisons, functions."""

from __future__ import annotations

import math

import pytest

from repro.errors import ExecutionError
from repro.mass.loader import load_xml
from repro.algebra.execution import NodeSetValue, to_boolean, to_number, to_string


@pytest.fixture(scope="module")
def store():
    return load_xml("<a><b>1</b><b>2</b></a>")


def node_set(store, keys):
    return NodeSetValue(lambda: iter(keys), store)


class TestToBoolean:
    def test_booleans(self):
        assert to_boolean(True) is True
        assert to_boolean(False) is False

    def test_numbers(self):
        assert to_boolean(1.0) and to_boolean(-0.5)
        assert not to_boolean(0.0)
        assert not to_boolean(math.nan)

    def test_strings(self):
        assert to_boolean("x") and to_boolean("false")
        assert not to_boolean("")

    def test_node_sets(self, store):
        assert not to_boolean(node_set(store, []))
        some_key = next(iter(store.node_index.scan(None, None))).key
        assert to_boolean(node_set(store, [some_key]))

    def test_rejects_other_types(self):
        with pytest.raises(ExecutionError):
            to_boolean(object())


class TestToNumber:
    def test_booleans(self):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_strings(self):
        assert to_number("  42 ") == 42.0
        assert to_number("3.5") == 3.5
        assert math.isnan(to_number("abc"))
        assert math.isnan(to_number(""))

    def test_node_set_uses_first_string_value(self, store):
        texts = [
            record.key
            for record in store.node_index.scan(None, None)
            if record.name == "b"
        ]
        assert to_number(node_set(store, texts)) == 1.0


class TestToString:
    def test_booleans(self):
        assert to_string(True) == "true"
        assert to_string(False) == "false"

    def test_numbers(self):
        assert to_string(3.0) == "3"
        assert to_string(-2.0) == "-2"
        assert to_string(math.nan) == "NaN"
        assert to_string(2.5) == "2.5"

    def test_empty_node_set(self, store):
        assert to_string(node_set(store, [])) == ""

    def test_node_set_first_in_document_order(self, store):
        texts = [
            record.key
            for record in store.node_index.scan(None, None)
            if record.name == "b"
        ]
        # even if iteration order is reversed, string() takes the first
        # node in *document* order
        assert to_string(node_set(store, list(reversed(texts)))) == "1"


class TestNodeSetValue:
    def test_count_and_empty(self, store):
        assert node_set(store, []).count() == 0
        assert node_set(store, []).is_empty()

    def test_reiterable(self, store):
        keys = [record.key for record in store.node_index.scan(None, None)]
        value = node_set(store, keys)
        assert value.count() == value.count()


class TestComparisonsViaQueries:
    """Comparison semantics exercised through real predicate evaluation."""

    @pytest.fixture(scope="class")
    def numbers_store(self):
        return load_xml(
            "<r><v>10</v><v>2</v><v>x</v><w a='2'>2</w><empty/></r>"
        )

    def run(self, store, query):
        from repro.algebra.builder import build_default_plan
        from repro.algebra.execution import execute_plan

        return len(set(execute_plan(build_default_plan(query), store)))

    def test_nodeset_vs_number_is_existential(self, numbers_store):
        assert self.run(numbers_store, "//r[v > 5]") == 1
        assert self.run(numbers_store, "//r[v > 100]") == 0

    def test_nodeset_vs_string_equality(self, numbers_store):
        assert self.run(numbers_store, "//r[v = 'x']") == 1
        assert self.run(numbers_store, "//r[v = 'y']") == 0

    def test_nodeset_vs_nodeset(self, numbers_store):
        # some v equals some w ('2' = '2')
        assert self.run(numbers_store, "//r[v = w]") == 1
        assert self.run(numbers_store, "//r[v = missing]") == 0

    def test_both_eq_and_neq_can_hold(self, numbers_store):
        """Existential semantics: v = 2 and v != 2 are both true."""
        assert self.run(numbers_store, "//r[v = 2]") == 1
        assert self.run(numbers_store, "//r[v != 2]") == 1

    def test_nodeset_vs_boolean(self, numbers_store):
        assert self.run(numbers_store, "//r[(v) = true()]") == 1
        assert self.run(numbers_store, "//r[(missing) = false()]") == 1

    def test_relational_flips_when_nodeset_on_right(self, numbers_store):
        assert self.run(numbers_store, "//r[5 < v]") == 1
        assert self.run(numbers_store, "//r[100 < v]") == 0

    def test_string_number_comparison_is_numeric(self, numbers_store):
        # '10' > '9' numerically is false... 10 > 9 true; lexicographic would differ
        assert self.run(numbers_store, "//r[v > 9]") == 1

    def test_arithmetic_in_predicates(self, numbers_store):
        assert self.run(numbers_store, "//r[v = 5 + 5]") == 1
        assert self.run(numbers_store, "//r[v = 20 div 2]") == 1
        assert self.run(numbers_store, "//r[v = 12 mod 10]") == 1
        assert self.run(numbers_store, "//r[v = 5 * 2]") == 1
        assert self.run(numbers_store, "//r[v = 12 - 2]") == 1
        assert self.run(numbers_store, "//r[v = -(-10)]") == 1

    def test_division_by_zero(self, numbers_store):
        assert self.run(numbers_store, "//r[1 div 0 > 1000]") == 1
        assert self.run(numbers_store, "//r[0 div 0 = 0]") == 0  # NaN

    def test_string_functions(self, numbers_store):
        assert self.run(numbers_store, "//w[string-length(.) = 1]") == 1
        assert self.run(numbers_store, "//r[concat('1', '0') = v]") == 1
        assert self.run(numbers_store, "//r[normalize-space(' a  b ') = 'a b']") == 1

    def test_name_functions(self, numbers_store):
        assert self.run(numbers_store, "//*[name() = 'empty']") == 1
        assert self.run(numbers_store, "//r[local-name(empty) = 'empty']") == 1
        assert self.run(numbers_store, "//r[name(missing) = '']") == 1

    def test_sum_and_rounding(self, numbers_store):
        assert self.run(numbers_store, "//w[sum(//r/v) != sum(//r/v)]") == 0  # NaN('x')
        assert self.run(numbers_store, "//r[floor(2.7) = 2]") == 1
        assert self.run(numbers_store, "//r[ceiling(2.1) = 3]") == 1
        assert self.run(numbers_store, "//r[round(2.5) = 3]") == 1
        assert self.run(numbers_store, "//r[round(-2.5) = -2]") == 1

    def test_number_function(self, numbers_store):
        assert self.run(numbers_store, "//w[number() = 2]") == 1
        assert self.run(numbers_store, "//r[number('3') = 3]") == 1

    def test_string_of_context(self, numbers_store):
        assert self.run(numbers_store, "//w[string() = '2']") == 1
