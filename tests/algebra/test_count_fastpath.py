"""``NodeSetValue.count()`` equals materialized counting on all 13 axes.

``count(...)`` over a bare axis step may answer through
:func:`~repro.mass.axes.axis_count_exact` — O(log n) B+-tree range counts
— instead of iterating.  The fast path must agree with the iterated
count on every axis, and must keep agreeing after a store mutation bumps
the epoch (a stale range count would silently corrupt ``count()``,
``last()`` and positional predicates downstream).
"""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.model import Axis, NodeTest
from repro.algebra.execution import EvalContext, ExpressionEvaluator
from repro.algebra.plan import StepNode

DOC = """<site>
<people>
<person id="p0"><name>Ada</name><watches><watch/><watch/></watches></person>
<person id="p1"><name>Bob</name><name>Rob</name></person>
</people>
<people><person id="p2"><name>Cyd</name></person></people>
</site>"""

ALL_AXES = tuple(Axis)


def _key_of(store, name, nth=0):
    hits = [
        record.key
        for record in store.node_index.scan(None, None)
        if record.name == name
    ]
    return hits[nth]


def _tests_for(axis):
    # A name test on the axis's principal kind, plus node() which always
    # falls back to iteration — both must agree with materialization.
    if axis is Axis.ATTRIBUTE:
        return (NodeTest.name_test("id"), NodeTest.node())
    return (NodeTest.name_test("name"), NodeTest.node())


def _counts(store, context_key, axis, test):
    evaluator = ExpressionEvaluator(store)
    node_set = evaluator._node_set(
        StepNode(axis, test), EvalContext(store, context_key)
    )
    return node_set.count(), sum(1 for _ in node_set.keys())


class TestCountFastPath:
    @pytest.mark.parametrize("axis", ALL_AXES, ids=lambda a: a.value)
    def test_fast_count_matches_materialized(self, axis):
        store = load_xml(DOC, name="count-fastpath")
        context = _key_of(store, "person", 1)  # mid-tree: every axis nonempty-able
        for test in _tests_for(axis):
            fast, slow = _counts(store, context, axis, test)
            assert fast == slow

    @pytest.mark.parametrize("axis", ALL_AXES, ids=lambda a: a.value)
    def test_fast_count_survives_epoch_bump(self, axis):
        store = load_xml(DOC, name="count-fastpath")
        context = _key_of(store, "person", 1)
        test = _tests_for(axis)[0]
        before_fast, before_slow = _counts(store, context, axis, test)
        assert before_fast == before_slow

        epoch = store.epoch
        # Insert a matching node where the axis can see it (a following
        # sibling <name> inside the same person) and one far away.
        store.insert_element(context, "name", text="New")
        store.insert_element(_key_of(store, "people", 1), "name")
        assert store.epoch > epoch

        after_fast, after_slow = _counts(store, context, axis, test)
        assert after_fast == after_slow
        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            assert after_fast == before_fast + 1  # the in-subtree insert

    def test_document_wide_descendant_count_sees_every_insert(self):
        store = load_xml(DOC, name="count-fastpath")
        doc = next(iter(store.node_index.scan(None, None))).key
        test = NodeTest.name_test("name")
        fast, slow = _counts(store, doc, Axis.DESCENDANT, test)
        assert fast == slow == 4
        store.insert_element(_key_of(store, "person", 0), "name")
        fast, slow = _counts(store, doc, Axis.DESCENDANT, test)
        assert fast == slow == 5
