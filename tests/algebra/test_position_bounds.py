"""Position-predicate early termination (range position predicates).

``[3]`` and ``[position() <= k]`` carry a static ceiling: the stage stops
pulling candidates from the index once it is reached, so ``//x/y[1]``
does one probe per context instead of scanning every y.
"""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import (
    CompiledPredicate,
    ExpressionEvaluator,
    _position_stop_bound,
    execute_plan,
)


@pytest.fixture(scope="module")
def store():
    items = "".join(f"<item><n>{index}</n></item>" for index in range(100))
    return load_xml(f"<root><list>{items}</list></root>")


def predicate_of(store, query):
    plan = build_default_plan(query)
    node = plan.root.context_child
    while not node.predicates:
        node = node.context_child
    return CompiledPredicate(node.predicates[0], ExpressionEvaluator(store))


class TestStaticBounds:
    def test_bare_number(self, store):
        assert predicate_of(store, "//item[3]").stop_after == 3

    def test_position_le(self, store):
        assert predicate_of(store, "//item[position() <= 5]").stop_after == 5

    def test_position_lt(self, store):
        assert predicate_of(store, "//item[position() < 5]").stop_after == 4

    def test_position_eq(self, store):
        assert predicate_of(store, "//item[position() = 7]").stop_after == 7

    def test_reversed_operands(self, store):
        assert predicate_of(store, "//item[5 >= position()]").stop_after == 5

    def test_no_bound_for_ge(self, store):
        assert predicate_of(store, "//item[position() >= 5]").stop_after is None

    def test_no_bound_for_boolean(self, store):
        assert predicate_of(store, "//item[n]").stop_after is None

    def test_no_bound_with_last(self, store):
        assert predicate_of(store, "//item[position() = last()]").stop_after is None

    def test_fractional_position_matches_nothing(self, store):
        assert predicate_of(store, "//item[2.5]").stop_after == 0


class TestSemantics:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("//list/item[1]/n", ["0"]),
            ("//list/item[3]/n", ["2"]),
            ("//list/item[position() <= 3]/n", ["0", "1", "2"]),
            ("//list/item[position() < 3]/n", ["0", "1"]),
            ("//list/item[2.5]", []),
            ("//list/item[position() = 100]/n", ["99"]),
            ("//list/item[position() <= 0]", []),
        ],
    )
    def test_results(self, store, query, expected):
        plan = build_default_plan(query)
        keys = sorted(set(execute_plan(plan, store)))
        values = [store.string_value(key) for key in keys]
        assert values == expected


class TestEarlyTermination:
    def test_first_item_does_not_scan_the_list(self, store):
        """//list/item[1] must touch O(1) index entries, not all 100."""
        plan = build_default_plan("//list/item[1]")
        store.reset_metrics()
        result = list(execute_plan(plan, store))
        assert len(result) == 1
        scanned = store.io_snapshot()["entries_scanned"]
        assert scanned < 20

    def test_unbounded_predicate_scans_everything(self, store):
        plan = build_default_plan("//list/item[n >= 0]")
        store.reset_metrics()
        result = list(execute_plan(plan, store))
        assert len(result) == 100
        assert store.io_snapshot()["entries_scanned"] >= 100
