"""Plan-node API: identity, walking, cost annotations, rendering."""

from __future__ import annotations

import pytest

from repro.model import Axis, NodeTest
from repro.algebra.builder import build_default_plan
from repro.algebra.plan import (
    CostInfo,
    LiteralNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
    ValueStepNode,
)


class TestCostInfo:
    def test_annotate_empty(self):
        assert CostInfo().annotate() == ""

    def test_annotate_full(self):
        info = CostInfo(count=10, text_count=2, tuples_in=5, tuples_out=3, selectivity=0.5)
        text = info.annotate()
        assert "COUNT=10" in text and "TC=2" in text
        assert "IN=5" in text and "OUT=3" in text and "sel=0.500" in text

    def test_annotate_partial(self):
        assert CostInfo(count=4).annotate() == "COUNT=4"


class TestDescribe:
    def test_step_describe(self):
        step = StepNode(Axis.CHILD, NodeTest.name_test("a"))
        step.op_id = 7
        assert step.describe() == "Phi_7[child::a]"

    def test_value_step_describe(self):
        node = ValueStepNode("x")
        node.op_id = 3
        assert node.describe() == "Phi_3[value::'x']"

    def test_literal_describe(self):
        literal = LiteralNode("Yung Flach")
        literal.op_id = 4
        assert "L_4" in literal.describe() and "Yung Flach" in literal.describe()

    def test_root_symbol(self):
        assert RootNode().symbol() == "R"


class TestWalk:
    def test_walk_is_preorder(self):
        plan = build_default_plan("//a[b = 'x']/c")
        nodes = plan.operators()
        assert nodes[0] is plan.root
        ids = [node.op_id for node in nodes]
        assert ids == sorted(ids)

    def test_renumber_is_dense_after_mutation(self):
        plan = build_default_plan("//a/b")
        step = plan.root.context_child
        step.context_child = None  # drop the leaf
        plan.renumber()
        assert [node.op_id for node in plan.walk()] == [1, 2]

    def test_walk_covers_union_branches(self):
        plan = build_default_plan("//a | //b")
        names = [
            node.test.name
            for node in plan.walk()
            if isinstance(node, StepNode)
        ]
        assert names == ["a", "b"]

    def test_leaf_of_chain(self):
        plan = build_default_plan("//a/b/c")
        assert plan.root.leaf().test.name == "a"


class TestExplain:
    def test_without_costs(self):
        plan = build_default_plan("//a")
        assert "COUNT" not in plan.explain(costs=False)

    def test_with_costs_after_estimation(self, small_store):
        from repro.cost.estimator import CostEstimator

        plan = build_default_plan("//person")
        CostEstimator(small_store).estimate(plan)
        assert "COUNT=3" in plan.explain()

    def test_predicate_sections_labelled(self):
        plan = build_default_plan("//a[b]")
        text = plan.explain(costs=False)
        assert "pred:" in text and "path:" in text

    def test_union_sections_labelled(self):
        plan = build_default_plan("//a | //b")
        assert plan.explain(costs=False).count("ctx:") >= 2


class TestCloneIdentity:
    def test_union_clone_deep(self):
        plan = build_default_plan("//a | //b")
        copy = plan.clone()
        union = copy.root.context_child
        assert isinstance(union, UnionNode)
        union.branches.pop()
        assert len(plan.root.context_child.branches) == 2

    def test_value_step_clone_keeps_flags(self):
        node = ValueStepNode("v", text_only=False)
        assert node.clone().text_only is False

    def test_root_distinct_flag_cloned(self):
        plan = build_default_plan("//a")
        plan.root.distinct = False
        assert plan.clone().root.distinct is False


class TestManualConstruction:
    def test_predicates_list_is_mutable(self):
        step = StepNode(Axis.CHILD, NodeTest.name_test("a"))
        step.predicates.append(LiteralNode("x"))
        assert len(list(step.children())) == 1

    def test_chain_with_context(self):
        inner = StepNode(Axis.DESCENDANT, NodeTest.name_test("a"))
        outer = StepNode(Axis.CHILD, NodeTest.name_test("b"), context_child=inner)
        plan = QueryPlan(RootNode(outer), "manual")
        plan.renumber()
        assert [node.op_id for node in plan.walk()] == [1, 2, 3]
