"""The INITIAL / FETCHING / OUT_OF_TUPLES protocol (Section VII).

These tests observe the state machine directly, including the execution
walk-through of Figure 11 (context propagation through nested exist
predicates on the optimized Q1 plan).
"""

from __future__ import annotations

import pytest

from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import (
    OperatorState,
    RootOperator,
    StepOperator,
    UnionOperator,
    ValueStepOperator,
    build_operators,
)


@pytest.fixture
def store():
    return load_xml(
        "<site><person><name>Ada</name><address/></person>"
        "<person><name>Bob</name></person></site>"
    )


def operator_for(store, expression):
    plan = build_default_plan(expression)
    return build_operators(store, plan.root)


class TestStateTransitions:
    def test_initial_before_first_request(self, store):
        operator = operator_for(store, "//person")
        operator.reset(FlexKey.document())
        assert operator.state is OperatorState.INITIAL
        assert operator.child.state is OperatorState.INITIAL

    def test_fetching_while_tuples_remain(self, store):
        operator = operator_for(store, "//person")
        operator.reset(FlexKey.document())
        assert operator.next_tuple() is not None
        assert operator.state is OperatorState.FETCHING
        assert operator.child.state is OperatorState.FETCHING

    def test_out_of_tuples_at_exhaustion(self, store):
        operator = operator_for(store, "//person")
        operator.reset(FlexKey.document())
        while operator.next_tuple() is not None:
            pass
        assert operator.state is OperatorState.OUT_OF_TUPLES
        assert operator.child.state is OperatorState.OUT_OF_TUPLES

    def test_out_of_tuples_is_sticky(self, store):
        operator = operator_for(store, "//person")
        operator.reset(FlexKey.document())
        list(operator.iterate())
        assert operator.next_tuple() is None
        assert operator.next_tuple() is None

    def test_reset_rearms(self, store):
        operator = operator_for(store, "//person")
        operator.reset(FlexKey.document())
        first_run = list(operator.iterate())
        operator.reset(FlexKey.document())
        assert operator.state is OperatorState.INITIAL
        assert list(operator.iterate()) == first_run

    def test_empty_result_goes_straight_out(self, store):
        operator = operator_for(store, "//missing")
        operator.reset(FlexKey.document())
        assert operator.next_tuple() is None
        assert operator.state is OperatorState.OUT_OF_TUPLES

    def test_non_leaf_pulls_context_on_demand(self, store):
        """Algorithm 2: the upper step requests one context at a time."""
        operator = operator_for(store, "//person/name")
        operator.reset(FlexKey.document())
        step = operator.child  # name step
        leaf = step.context_child  # person step
        assert leaf.state is OperatorState.INITIAL
        first = operator.next_tuple()
        assert first is not None
        assert leaf.state is OperatorState.FETCHING
        # person leaf must not be exhausted after the first name
        assert leaf.state is not OperatorState.OUT_OF_TUPLES


class TestOperatorKinds:
    def test_tree_shape(self, store):
        operator = operator_for(store, "//person/name")
        assert isinstance(operator, RootOperator)
        assert isinstance(operator.child, StepOperator)
        assert isinstance(operator.child.context_child, StepOperator)

    def test_union_operator(self, store):
        operator = operator_for(store, "//name | //address")
        assert isinstance(operator.child, UnionOperator)
        operator.reset(FlexKey.document())
        assert len(list(operator.iterate())) == 3

    def test_value_step_operator(self, store):
        from repro.algebra.plan import QueryPlan, RootNode, StepNode, ValueStepNode
        from repro.model import Axis, NodeTest

        value_leaf = ValueStepNode("Ada")
        parent_step = StepNode(Axis.PARENT, NodeTest.name_test("name"), value_leaf)
        plan = QueryPlan(RootNode(parent_step), "manual")
        plan.renumber()
        operator = build_operators(store, plan.root)
        operator.reset(FlexKey.document())
        results = list(operator.iterate())
        assert len(results) == 1
        assert store.require(results[0]).name == "name"

    def test_value_step_states(self, store):
        operator = ValueStepOperator(store, "Ada", [])
        operator.reset(FlexKey.document())
        assert operator.state is OperatorState.INITIAL
        assert operator.next_tuple() is not None
        assert operator.state is OperatorState.FETCHING
        assert operator.next_tuple() is None
        assert operator.state is OperatorState.OUT_OF_TUPLES

    def test_value_step_unarmed_without_context(self, store):
        operator = ValueStepOperator(store, "Ada", [])
        operator.reset(None)
        assert operator.next_tuple() is None


class TestFigure11Walkthrough:
    """Execution of the optimized Q1 plan over the Figure 10 fragment."""

    DOC = """<site><person id="person144">
    <name>Yung Flach</name>
    <emailaddress>Flach@auth.gr</emailaddress>
    <address><street>92 Pfisterer St</street><city>Monroe</city>
    <country>United States</country><zipcode>12</zipcode></address>
    <watches><watch open_auction="oa108"/><watch open_auction="oa94"/></watches>
    </person><person id="person145"><phone>1</phone></person></site>"""

    def test_optimized_plan_returns_the_address(self):
        store = load_xml(self.DOC)
        # //address[parent::person[child::name]] — the Figure 11 plan.
        plan = build_default_plan("//address[parent::person[child::name]]")
        operator = build_operators(store, plan.root)
        operator.reset(FlexKey.document())
        results = list(operator.iterate())
        assert len(results) == 1
        address = store.require(results[0])
        assert address.name == "address"
        # the FLEX rendering of the walk-through: person at depth 2,
        # address its third content child (after @id, name, emailaddress)
        assert address.key.parent().depth == 2

    def test_predicate_context_is_per_candidate(self):
        store = load_xml(self.DOC)
        plan = build_default_plan("//person[address]")
        operator = build_operators(store, plan.root)
        operator.reset(FlexKey.document())
        results = [store.require(key) for key in operator.iterate()]
        assert len(results) == 1
        assert results[0].name == "person"

    def test_equivalent_to_original_q1(self):
        store = load_xml(self.DOC)
        original = build_default_plan("//person/address")
        optimized = build_default_plan("//address[parent::person]")
        run = lambda plan: sorted(set(build_and_run(store, plan)))
        assert run(original) == run(optimized)


def build_and_run(store, plan):
    operator = build_operators(store, plan.root)
    operator.reset(FlexKey.document())
    return list(operator.iterate())
