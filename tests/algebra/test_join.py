"""The join operator ``J^cond`` (paper Section V-C, operator 6)."""

from __future__ import annotations

import pytest

from repro.mass.flexkey import FlexKey
from repro.mass.loader import load_xml
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import OperatorState, build_operators
from repro.algebra.plan import JoinNode, QueryPlan, RootNode
from repro.cost.estimator import CostEstimator


@pytest.fixture
def store():
    return load_xml(
        """<site>
        <people>
          <person><id>p0</id><name>Ada</name></person>
          <person><id>p1</id><name>Bob</name></person>
        </people>
        <auctions>
          <auction><seller>p0</seller></auction>
          <auction><seller>p1</seller></auction>
          <auction><seller>p9</seller></auction>
        </auctions>
        </site>"""
    )


def join_plan(left_query: str, right_query: str, condition: str) -> QueryPlan:
    left = build_default_plan(left_query).root.context_child
    right = build_default_plan(right_query).root.context_child
    plan = QueryPlan(RootNode(JoinNode(left, right, condition)), "join")
    plan.renumber()
    return plan


def run(store, plan):
    operator = build_operators(store, plan.root)
    operator.reset(FlexKey.document())
    return [store.require(key) for key in operator.iterate()]


class TestValueEquality:
    def test_idref_style_join(self, store):
        """sellers whose value matches an existing person id."""
        plan = join_plan("//person/id", "//auction/seller", "value-eq")
        sellers = run(store, plan)
        assert [store.string_value(record.key) for record in sellers] == ["p0", "p1"]

    def test_no_matches(self, store):
        plan = join_plan("//person/name", "//auction/seller", "value-eq")
        assert run(store, plan) == []

    def test_empty_left_side(self, store):
        plan = join_plan("//missing", "//auction/seller", "value-eq")
        assert run(store, plan) == []


class TestStructuralConditions:
    def test_ancestor_join(self, store):
        plan = join_plan("//people", "//name", "ancestor")
        names = run(store, plan)
        assert len(names) == 2

    def test_ancestor_join_excludes_outside(self, store):
        plan = join_plan("//auctions", "//name", "ancestor")
        assert run(store, plan) == []

    def test_precedes_join(self, store):
        plan = join_plan("//people", "//auction", "precedes")
        assert len(run(store, plan)) == 3

    def test_precedes_excludes_own_subtree(self, store):
        plan = join_plan("//people", "//person", "precedes")
        assert run(store, plan) == []


class TestJoinPlumbing:
    def test_invalid_condition_rejected(self, store):
        left = build_default_plan("//person").root.context_child
        right = build_default_plan("//auction").root.context_child
        with pytest.raises(ValueError):
            JoinNode(left, right, "theta")

    def test_states(self, store):
        plan = join_plan("//person/id", "//auction/seller", "value-eq")
        operator = build_operators(store, plan.root).child
        operator.reset(FlexKey.document())
        assert operator.state is OperatorState.INITIAL
        assert operator.next_tuple() is not None
        assert operator.state is OperatorState.FETCHING
        list(operator.iterate())
        assert operator.state is OperatorState.OUT_OF_TUPLES

    def test_clone(self, store):
        plan = join_plan("//person/id", "//auction/seller", "value-eq")
        copy = plan.clone()
        assert copy.explain(costs=False) == plan.explain(costs=False)

    def test_cost_estimation(self, store):
        plan = join_plan("//person/id", "//auction/seller", "value-eq")
        CostEstimator(store).estimate(plan)
        join = plan.root.context_child
        assert join.cost.tuples_in == 5  # 2 ids + 3 sellers
        assert join.cost.tuples_out == 3  # bounded by the right side

    def test_explain_symbol(self, store):
        plan = join_plan("//person/id", "//auction/seller", "value-eq")
        assert "J_" in plan.explain(costs=False)
