"""End-to-end execution correctness on the shared small document."""

from __future__ import annotations

import pytest

from repro.mass.flexkey import FlexKey
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan


def names(store, expression, context=None):
    plan = build_default_plan(expression)
    keys = sorted(set(execute_plan(plan, store, context)))
    result = []
    for key in keys:
        record = store.require(key)
        result.append(record.name or record.kind.value)
    return result


def count(store, expression):
    return len(set(execute_plan(build_default_plan(expression), store)))


CASES = [
    # paths and axes
    ("//person", ["person"] * 3),
    ("/site/people/person", ["person"] * 3),
    ("//person/address", ["address"] * 2),
    ("//person/address/city", ["city"] * 2),
    ("//watches/watch/ancestor::person", ["person"] * 2),
    ("/descendant::name/parent::*/self::person/address", ["address"] * 2),
    ("//itemref/following-sibling::price/parent::*", ["closed_auction"] * 2),
    ("//city/preceding-sibling::street", ["street"] * 2),
    ("//person/descendant-or-self::person", ["person"] * 3),
    ("//zipcode/following::closed_auction", ["closed_auction"] * 2),
    ("//itemref/preceding::person", ["person"] * 3),
    ("//name/..", ["person"] * 3),
    ("//watch/../..", ["person"] * 2),
    ("//person/.", ["person"] * 3),
    # attributes
    ("//person/@id", ["id"] * 3),
    ("//@person", ["person"] * 4),
    ("//watch/@*", ["open_auction"] * 3),
    # value predicates
    ("//province[text()='Vermont']/ancestor::person", ["person"]),
    ("//province[text()='Nowhere']", []),
    ("//name[text()='Yung Flach']/following-sibling::emailaddress", ["emailaddress"]),
    ("//person[@id='person2']/name", ["name"]),
    ("//person[address/city='Quincy']", ["person"]),
    ("//closed_auction[price='9.99']/itemref", ["itemref"]),
    # numeric comparisons
    ("//closed_auction[price > 5]", ["closed_auction"]),
    ("//closed_auction[price < 5]", ["closed_auction"]),
    ("//closed_auction[price >= 1.50][price <= 2]", ["closed_auction"]),
    ("//address[zipcode != 12]", ["address"]),
    # boolean connectors / functions
    ("//person[address and watches]", ["person"]),  # person2 has both
    ("//person[address and emailaddress]", ["person"]),  # only person0
    ("//person[address or watches]", ["person"] * 3),
    ("//person[not(address)]", ["person"]),
    ("//person[count(watches/watch) = 2]", ["person"]),
    ("//person[starts-with(name, 'Yung')]", ["person"]),
    ("//person[contains(emailaddress, 'auth.gr')]", ["person"]),
    # positions
    ("//person[1]", ["person"]),
    ("//person[2]/name", ["name"]),
    ("//person[last()]", ["person"]),
    ("//person[position() >= 2]", ["person"] * 2),
    ("//closed_auction[1]/price", ["price"]),
    ("//watch[2]", ["watch"]),
    # kind tests
    ("//name/text()", ["text"] * 3),
    ("//comment()", ["comment"]),
    ("//processing-instruction()", ["marker"]),
    ("//processing-instruction('marker')", ["marker"]),
    ("//processing-instruction('other')", []),
    ("/site/node()", ["people", "closed_auctions", "comment", "marker"]),
    # unions
    ("//street | //city", ["street", "city"] * 2),
    ("//name | //name", ["name"] * 3),
    # empty results
    ("//nothing", []),
    ("//person/person", []),
    ("/person", []),
]


@pytest.mark.parametrize("expression,expected", CASES, ids=[c[0] for c in CASES])
def test_query(small_store, expression, expected):
    assert sorted(names(small_store, expression)) == sorted(expected)


class TestContextHandling:
    def test_relative_path_from_custom_context(self, small_store):
        person_keys = sorted(set(execute_plan(build_default_plan("//person"), small_store)))
        first_person = person_keys[0]
        got = names(small_store, "address/city", context=first_person)
        assert got == ["city"]

    def test_absolute_path_ignores_leaf_context_not(self, small_store):
        """The engine sets the leaf context; absolute and relative paths
        both start from whatever the caller passes (document by default)."""
        person_keys = sorted(set(execute_plan(build_default_plan("//person"), small_store)))
        got = names(small_store, "//city", context=person_keys[0])
        assert got == ["city"]  # only the subtree of person0

    def test_document_self(self, small_store):
        got = names(small_store, "/")
        assert got == ["document"]


class TestPipelineBehaviour:
    def test_streaming_yields_before_exhaustion(self, small_store):
        """The pipeline produces its first tuple without draining the plan."""
        iterator = execute_plan(build_default_plan("//person"), small_store)
        first = next(iterator)
        assert first is not None
        remaining = list(iterator)
        assert len(remaining) == 2

    def test_duplicates_preserved_in_raw_pipeline(self, small_store):
        """//watches/watch/ancestor::person emits one person per watch."""
        raw = list(execute_plan(build_default_plan("//watches/watch/ancestor::person"), small_store))
        assert len(raw) == 3  # 2 + 1 watches
        assert len(set(raw)) == 2

    def test_results_are_keys(self, small_store):
        for key in execute_plan(build_default_plan("//name"), small_store):
            assert isinstance(key, FlexKey)
