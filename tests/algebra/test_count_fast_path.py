"""count() over a pure axis range answers from the B+-tree range count.

A ``count(descendant::x)`` with no predicates needs no key
materialization at all: the counted B+-tree gives the answer from
interior-node counts, so the IO snapshot must show zero entries scanned.
Anything with extra steps or predicates still drains the operator tree.
"""

from __future__ import annotations

import pytest

from repro.engine.engine import VamanaEngine


def _value_with_io(store, expression):
    engine = VamanaEngine(store)
    before = store.io_snapshot()
    value = engine.evaluate_value(expression)
    after = store.io_snapshot()
    return value, {key: after[key] - before[key] for key in before}


@pytest.mark.parametrize(
    "expression",
    [
        "count(//item)",
        "count(descendant::name)",
        "count(//text())",
        "count(//open_auction)",
    ],
)
def test_pure_axis_count_scans_nothing(xmark_store, expression):
    value, io = _value_with_io(xmark_store, expression)
    assert value > 0
    assert io["entries_scanned"] == 0
    assert io["record_fetches"] == 0


def test_fast_count_matches_materialized_count(xmark_store):
    engine = VamanaEngine(xmark_store)
    for path in ["//item", "//person", "//text()", "//watch"]:
        assert engine.evaluate_value(f"count({path})") == float(
            len(engine.evaluate(path))
        )


def test_multi_step_count_still_correct(xmark_store):
    value, io = _value_with_io(xmark_store, "count(//person/name)")
    engine = VamanaEngine(xmark_store)
    assert value == float(len(engine.evaluate("//person/name")))
    # Not a bare axis range — the operator tree really ran.
    assert io["entries_scanned"] > 0


def test_predicated_count_still_correct(xmark_store):
    value, _ = _value_with_io(xmark_store, "count(//item[1])")
    engine = VamanaEngine(xmark_store)
    assert value == float(len(engine.evaluate("//item[1]")))


def test_count_in_predicate_agrees_across_pipelines(xmark_store):
    query = "//item[count(descendant::text) > 1]"
    batched = VamanaEngine(xmark_store, batched=True).evaluate(query)
    tuple_mode = VamanaEngine(xmark_store, batched=False).evaluate(query)
    assert list(batched.keys) == list(tuple_mode.keys)
