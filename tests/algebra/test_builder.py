"""Default-plan construction tests (parse tree → physical plan)."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.model import Axis, NodeTestKind
from repro.algebra.builder import build_default_plan
from repro.algebra.plan import (
    BinaryPredicateNode,
    ExistsNode,
    LiteralNode,
    NumberNode,
    PathExprNode,
    RootNode,
    StepNode,
    UnionNode,
)


def context_chain(plan):
    chain = []
    node = plan.root.context_child
    while node is not None:
        chain.append(node)
        node = node.context_child
    return chain


class TestChains:
    def test_q1_default_chain(self):
        plan = build_default_plan("descendant::name/parent::*/self::person/address")
        chain = context_chain(plan)
        assert [node.axis for node in chain] == [
            Axis.CHILD,
            Axis.SELF,
            Axis.PARENT,
            Axis.DESCENDANT,
        ]
        assert isinstance(plan.root, RootNode)

    def test_leaf_has_no_context_child(self):
        plan = build_default_plan("//person/address")
        assert context_chain(plan)[-1].context_child is None

    def test_double_slash_collapsed_at_compile_time(self):
        plan = build_default_plan("//person")
        chain = context_chain(plan)
        assert len(chain) == 1
        assert chain[0].axis is Axis.DESCENDANT
        assert chain[0].test.name == "person"

    def test_interior_double_slash_collapsed(self):
        plan = build_default_plan("//a//b")
        chain = context_chain(plan)
        assert [node.axis for node in chain] == [Axis.DESCENDANT, Axis.DESCENDANT]

    def test_positional_predicate_blocks_collapse(self):
        plan = build_default_plan("//person[2]")
        chain = context_chain(plan)
        assert len(chain) == 2
        assert chain[0].axis is Axis.CHILD
        assert chain[1].axis is Axis.DESCENDANT_OR_SELF

    def test_boolean_predicate_allows_collapse(self):
        plan = build_default_plan("//person[address]")
        assert len(context_chain(plan)) == 1

    def test_position_function_blocks_collapse(self):
        plan = build_default_plan("//person[position() = 2]")
        assert len(context_chain(plan)) == 2

    def test_ids_are_unique_and_dense(self):
        plan = build_default_plan("//a[b = 'x']/c")
        ids = [node.op_id for node in plan.walk()]
        assert ids == list(range(1, len(ids) + 1))


class TestPredicateTrees:
    def test_q2_shape(self):
        """Figure 4b: binary EQ over a text()-step path and a literal."""
        plan = build_default_plan("//name[text() = 'Yung Flach']")
        step = context_chain(plan)[0]
        predicate = step.predicates[0]
        assert isinstance(predicate, BinaryPredicateNode) and predicate.op == "="
        assert isinstance(predicate.left, PathExprNode)
        path = predicate.left.path
        assert isinstance(path, StepNode)
        assert path.test.kind is NodeTestKind.TEXT and path.context_child is None
        assert isinstance(predicate.right, LiteralNode)
        assert predicate.right.value == "Yung Flach"

    def test_bare_path_predicate_becomes_exists(self):
        plan = build_default_plan("//person[address]")
        predicate = context_chain(plan)[0].predicates[0]
        assert isinstance(predicate, ExistsNode)
        assert predicate.path.test.name == "address"

    def test_number_predicate_kept_as_number(self):
        plan = build_default_plan("person[3]")
        predicate = context_chain(plan)[0].predicates[0]
        assert isinstance(predicate, NumberNode) and predicate.value == 3

    def test_and_of_paths(self):
        plan = build_default_plan("//p[a and b]")
        predicate = context_chain(plan)[0].predicates[0]
        assert isinstance(predicate, BinaryPredicateNode) and predicate.op == "and"
        assert isinstance(predicate.left, ExistsNode)
        assert isinstance(predicate.right, ExistsNode)

    def test_nested_predicate_paths(self):
        plan = build_default_plan("//p[a[b]]")
        outer = context_chain(plan)[0].predicates[0]
        inner = outer.path.predicates[0]
        assert isinstance(inner, ExistsNode)
        assert inner.path.test.name == "b"

    def test_union_plan(self):
        plan = build_default_plan("//a | //b")
        union = plan.root.context_child
        assert isinstance(union, UnionNode) and len(union.branches) == 2

    def test_value_expression_rejected(self):
        with pytest.raises(PlanError):
            build_default_plan("1 + 2")
        with pytest.raises(PlanError):
            build_default_plan("count(//a)")


class TestCloneAndExplain:
    def test_clone_is_deep(self):
        plan = build_default_plan("//a[b]")
        copy = plan.clone()
        copy.root.context_child.predicates.clear()
        assert len(plan.root.context_child.predicates) == 1  # original untouched

    def test_clone_does_not_share_cost_objects(self):
        plan = build_default_plan("//a")
        copy = plan.clone()
        copy.root.context_child.cost.tuples_out = 99
        assert plan.root.context_child.cost.tuples_out is None

    def test_clone_preserves_ids(self):
        plan = build_default_plan("//a[b = 'x']/c")
        copy = plan.clone()
        assert [n.op_id for n in plan.walk()] == [n.op_id for n in copy.walk()]

    def test_explain_mentions_operators(self):
        plan = build_default_plan("//name[text() = 'v']")
        text = plan.explain(costs=False)
        assert "R_1" in text and "Beta" in text and "L_" in text

    def test_expression_recorded(self):
        plan = build_default_plan("//a")
        assert plan.expression == "//a"

    def test_leaf_helper(self):
        plan = build_default_plan("//a/b/c")
        assert plan.root.leaf().test.name == "a"
