"""The string-function core library, cross-checked between engines.

substring() in particular has famously fiddly spec semantics (1-based,
round() on both arguments, NaN handling) — the test cases below include
the examples from the XPath 1.0 recommendation itself.
"""

from __future__ import annotations

import pytest

from repro.engine.engine import VamanaEngine
from repro.mass.loader import load_xml
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.profiles import JAXEN_PROFILE

DOC = "<r><v>12345</v><w>hello world</w></r>"


@pytest.fixture(scope="module")
def engines():
    vamana = VamanaEngine(load_xml(DOC))
    dom = DomTraversalEngine(JAXEN_PROFILE)
    dom.load(DOC)
    return vamana, dom


# (expression, expected) — spec examples marked with a comment
CASES = [
    ("substring('12345', 2, 3)", "234"),  # spec
    ("substring('12345', 2)", "2345"),  # spec
    ("substring('12345', 1.5, 2.6)", "234"),  # spec
    ("substring('12345', 0, 3)", "12"),  # spec
    ("substring('12345', 0 div 0, 3)", ""),  # spec: NaN start
    ("substring('12345', 1, 0 div 0)", ""),  # spec: NaN length
    ("substring('12345', -42, 1 div 0)", "12345"),  # spec
    ("substring('12345', -1 div 0, 1 div 0)", ""),  # spec
    ("substring(//v, 2, 2)", "23"),
    ("substring-before('1999/04/01', '/')", "1999"),  # spec
    ("substring-before('abc', 'x')", ""),
    ("substring-after('1999/04/01', '/')", "04/01"),  # spec
    ("substring-after('1999/04/01', '19')", "99/04/01"),  # spec
    ("substring-after('abc', 'x')", ""),
    ("translate('bar', 'abc', 'ABC')", "BAr"),  # spec
    ("translate('--aaa--', 'abc-', 'ABC')", "AAA"),  # spec
    ("translate('aab', 'aa', 'xy')", "xxb"),  # first mapping wins
    ("concat(substring-before(//w, ' '), '!')", "hello!"),
]


@pytest.mark.parametrize("expression,expected", CASES, ids=[c[0] for c in CASES])
def test_string_functions(engines, expression, expected):
    vamana, dom = engines
    assert vamana.evaluate_value(expression) == expected
    assert dom.evaluate_value(expression) == expected


BOOLEAN_CASES = [
    ("boolean(1)", True),
    ("boolean(0)", False),
    ("boolean('x')", True),
    ("boolean('')", False),
    ("boolean(//v)", True),
    ("boolean(//missing)", False),
]


@pytest.mark.parametrize("expression,expected", BOOLEAN_CASES, ids=[c[0] for c in BOOLEAN_CASES])
def test_boolean_function(engines, expression, expected):
    vamana, dom = engines
    assert vamana.evaluate_value(expression) is expected
    assert dom.evaluate_value(expression) is expected


def test_in_predicates(engines):
    vamana, dom = engines
    query = "//w[substring(., 1, 5) = 'hello']"
    assert len(vamana.evaluate(query)) == 1
    assert len(dom.evaluate(query)) == 1
    query = "//v[translate(., '12345', 'abcde') = 'abcde']"
    assert len(vamana.evaluate(query)) == 1
    assert len(dom.evaluate(query)) == 1


def test_parser_arities():
    from repro.errors import XPathSyntaxError
    from repro.xpath.parser import parse_xpath

    with pytest.raises(XPathSyntaxError):
        parse_xpath("substring('a')")
    with pytest.raises(XPathSyntaxError):
        parse_xpath("translate('a', 'b')")
    with pytest.raises(XPathSyntaxError):
        parse_xpath("boolean()")
