"""Batched execution is byte-identical to the tuple-at-a-time shim.

~200 randomly generated XPath queries over the XMark vocabulary, at two
document scales, with guards off and (generously) on: the block pipeline
with coalescing and skip-ahead cursors must return exactly the key
sequence the legacy tuple path returns, and the static plan verifier
must accept every plan the batched engine runs.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.plan_verifier import verify_plan
from repro.engine.engine import VamanaEngine
from repro.mass.loader import load_xml
from repro.xmark.generator import generate_document

AXES = [
    "",  # child (default)
    "descendant::",
    "descendant-or-self::",
    "following::",
    "following-sibling::",
    "preceding::",
    "preceding-sibling::",
    "ancestor::",
    "ancestor-or-self::",
    "parent::",
    "self::",
]

NAMES = [
    "site", "people", "person", "name", "address", "city", "country",
    "province", "watches", "watch", "open_auction", "closed_auction",
    "itemref", "price", "item", "description", "text", "emailaddress",
    "seller", "buyer", "date", "quantity", "category",
]

TESTS = NAMES + ["*", "node()", "text()"]

PREDICATES = [
    "[1]",
    "[2]",
    "[last()]",
    "[position() < 3]",
    "[name]",
    "[.//text]",
    "[not(watches)]",
    "[count(descendant::text) > 1]",
    "[text()='Vermont']",
    "[@id]",
]


def _random_query(rng: random.Random) -> str:
    steps = []
    for depth in range(rng.randint(1, 4)):
        axis = rng.choice(AXES)
        test = rng.choice(TESTS)
        # Kind tests on sibling/parent axes are fine; name tests cover
        # the coalescing fast path, predicates the fallback.
        step = axis + test
        if rng.random() < 0.3:
            step += rng.choice(PREDICATES)
        steps.append(step)
    prefix = rng.choice(["/", "//"])
    return prefix + "/".join(steps)


def _stores():
    return [
        load_xml(generate_document(0.002, seed=11), name="equiv-a"),
        load_xml(generate_document(0.005, seed=23), name="equiv-b"),
    ]


@pytest.fixture(scope="module")
def equivalence_stores():
    return _stores()


def _check_queries(stores, queries, guarded: bool):
    failures = []
    for store in stores:
        kwargs = (
            {"timeout_ms": 60_000, "max_pages": 50_000_000}
            if guarded
            else {}
        )
        tuple_engine = VamanaEngine(store, batched=False)
        batched_engine = VamanaEngine(store, batched=True)
        for query in queries:
            try:
                expected = tuple_engine.evaluate(query, **kwargs)
            except Exception:
                # Queries the legacy engine rejects are out of scope for
                # the equivalence claim; both sides must still agree.
                with pytest.raises(Exception):
                    batched_engine.evaluate(query, **kwargs)
                continue
            plan, _ = batched_engine.plan(query, True)
            verify_plan(plan)
            got = batched_engine.evaluate(query, **kwargs)
            if list(expected.keys) != list(got.keys):
                failures.append(
                    (store.name, query, len(expected.keys), len(got.keys))
                )
    assert not failures, failures


def test_random_queries_guards_off(equivalence_stores):
    rng = random.Random(20260807)
    queries = sorted({_random_query(rng) for _ in range(200)})
    _check_queries(equivalence_stores, queries, guarded=False)


def test_random_queries_guards_on(equivalence_stores):
    rng = random.Random(871)
    queries = sorted({_random_query(rng) for _ in range(60)})
    _check_queries(equivalence_stores, queries, guarded=True)


def test_deep_descendant_chains(equivalence_stores):
    queries = [
        "//item//text",
        "//open_auction//description//text",
        "//node()//text()",
        "//person//*",
        "//site//open_auction//text()",
        "//people//person//address//city",
    ]
    _check_queries(equivalence_stores, queries, guarded=False)
    _check_queries(equivalence_stores, queries, guarded=True)
