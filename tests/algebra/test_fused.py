"""Whole-query compilation: the FusedPathScan automaton, rule, and operator.

Covers the three layers of the fusion stack separately:

* :class:`PathAutomaton` construction — the per-kind transition bitmasks
  compiled from a step chain (name tests, ``*``, kind tests, the
  child/descendant/self axis split);
* :class:`PathFusionRule` matching — which chains fuse, which are left
  untouched (predicates, reverse axes, short chains, non-distinct roots),
  and that the rewrite preserves step order;
* end-to-end equivalence — ``VamanaEngine(fused=True)`` returns byte-
  identical key sequences to the unfused engine, under guards, across
  store mutations, and through the ``count()`` fast path.
"""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.mass.loader import load_xml
from repro.mass.records import NodeKind
from repro.model import Axis, NodeTest
from repro.engine.engine import VamanaEngine
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import BlockConfig
from repro.algebra.fused import (
    FusedPathScanOperator,
    PathAutomaton,
    compile_steps,
)
from repro.algebra.plan import FusedPathScanNode, StepNode
from repro.analysis.plan_verifier import verify_plan
from repro.optimizer.cleanup import cleanup_plan
from repro.optimizer.rules import PathFusionRule
from repro.xmark.generator import generate_document

DOC = """<site><people>
<person id="p0"><name>Ada</name><address><city>w</city></address></person>
<person id="p1"><name>Bob</name></person>
</people>
<regions><namerica><item><name>thing</name></item></namerica></regions>
</site>"""


@pytest.fixture
def store():
    return load_xml(DOC, name="fused")


def _name(name: str) -> NodeTest:
    return NodeTest.name_test(name)


class TestAutomatonConstruction:
    def test_child_chain_name_tests(self):
        auto = compile_steps([(Axis.CHILD, _name("people")),
                              (Axis.CHILD, _name("person"))])
        assert auto.state_count == 3
        assert auto.accept == 0b100
        assert auto.child_mask == 0b11
        assert auto.desc_mask == 0
        assert auto.closure_mask == 0
        assert auto.element_masks == {"people": 0b01, "person": 0b10}
        assert auto.element_default == 0  # a name test matches nothing else
        assert auto.text_mask == 0

    def test_star_matches_any_element(self):
        auto = compile_steps([(Axis.CHILD, NodeTest.name_test("*"))])
        assert auto.element_default == 0b1
        assert auto.match_mask(NodeKind.ELEMENT, "anything") == 0b1
        assert auto.match_mask(NodeKind.TEXT, "") == 0

    def test_node_test_matches_every_scanned_kind(self):
        auto = compile_steps([(Axis.DESCENDANT, NodeTest.node())])
        assert auto.desc_mask == 0b1
        for kind in (NodeKind.ELEMENT, NodeKind.TEXT, NodeKind.COMMENT,
                     NodeKind.PROCESSING_INSTRUCTION):
            assert auto.match_mask(kind, "x") == 0b1

    def test_text_and_comment_tests(self):
        auto = compile_steps([(Axis.CHILD, NodeTest.text()),
                              (Axis.CHILD, NodeTest.comment())])
        assert auto.text_mask == 0b01
        assert auto.comment_mask == 0b10
        assert auto.match_mask(NodeKind.ELEMENT, "text") == 0

    def test_descendant_or_self_sets_both_masks(self):
        auto = compile_steps([(Axis.DESCENDANT_OR_SELF, NodeTest.node()),
                              (Axis.CHILD, _name("person"))])
        assert auto.desc_mask == 0b01
        assert auto.closure_mask == 0b01
        assert auto.child_mask == 0b10

    def test_self_axis_is_closure_only(self):
        auto = compile_steps([(Axis.CHILD, _name("person")),
                              (Axis.SELF, NodeTest.name_test("*"))])
        assert auto.closure_mask == 0b10
        assert auto.desc_mask == 0
        assert auto.child_mask == 0b01

    def test_attribute_entries_never_match(self):
        auto = compile_steps([(Axis.DESCENDANT, NodeTest.node())])
        assert auto.match_mask(NodeKind.ATTRIBUTE, "id") == 0
        assert auto.match_mask(NodeKind.NAMESPACE, "ns") == 0

    def test_reverse_axis_is_rejected(self):
        with pytest.raises(PlanError):
            compile_steps([(Axis.PARENT, NodeTest.node())])

    def test_empty_chain_is_rejected(self):
        with pytest.raises(PlanError):
            compile_steps([])

    def test_closure_saturates_repeated_or_self_steps(self):
        # //node()//node(): one element node satisfies both steps at once.
        auto = compile_steps([
            (Axis.DESCENDANT_OR_SELF, NodeTest.node()),
            (Axis.DESCENDANT_OR_SELF, NodeTest.node()),
        ])
        states = auto.advance(0b01, NodeKind.ELEMENT, "site")
        assert states & auto.accept


def _fusion_sites(expression: str):
    rule = PathFusionRule()
    plan = build_default_plan(expression)
    cleanup_plan(plan)
    sites = [node for node in plan.walk() if rule.matches(plan, node)]
    return plan, rule, sites


class TestRuleMatching:
    def test_child_chain_matches_once_at_its_top(self):
        plan, _rule, sites = _fusion_sites("//people/person/name")
        assert len(sites) == 1
        assert isinstance(sites[0], StepNode)
        # The matched node is the chain's top operator — the *final*
        # location step, whose context chain reaches the leaf.
        assert sites[0].test == _name("name")

    def test_predicate_breaks_the_chain(self):
        _plan, _rule, sites = _fusion_sites("//people/person[1]/name")
        assert sites == []

    def test_reverse_axis_is_not_fusable(self):
        _plan, _rule, sites = _fusion_sites("//watch/ancestor::person")
        assert sites == []

    def test_single_step_is_not_fused(self):
        _plan, _rule, sites = _fusion_sites("//person")
        assert sites == []

    def test_non_distinct_root_blocks_fusion(self):
        plan, rule, sites = _fusion_sites("//people/person/name")
        assert sites
        plan.root.distinct = False
        assert not any(rule.matches(plan, node) for node in plan.walk())

    def test_apply_preserves_application_order(self):
        plan, rule, sites = _fusion_sites("//people/person/name")
        rule.apply(plan, sites[0])
        fused = [n for n in plan.walk() if isinstance(n, FusedPathScanNode)]
        assert len(fused) == 1
        axes = [axis for axis, _test in fused[0].steps]
        tests = [test for _axis, test in fused[0].steps]
        assert axes == [Axis.DESCENDANT, Axis.CHILD, Axis.CHILD]
        assert tests == [_name("people"), _name("person"), _name("name")]
        verify_plan(plan)

    def test_fused_plan_renders_in_explain(self, store):
        engine = VamanaEngine(store)
        text = engine.explain("//node()//text()", verify=True)
        assert "FPS" in text
        assert "states=" in text


QUERIES = [
    "//people/person/name",
    "//person/name/text()",
    "//people//name",
    "//node()//text()",
    "//node()//node()",
    "//site//node()//text()",
    "/site/people/person",
    "//item//name",
    "//people/person/address/city",
    "/descendant-or-self::node()/child::site/descendant::text()",
    # Regression: a step after a leading // must be able to match a node
    # whose "descendant" witness is the document node itself (the doc
    # node consumes descendant-or-self::node() in place — it is a
    # node()), otherwise top-level matches vanish from the fused scan.
    "//descendant::*/child::person",
    "//descendant::*/child::*/child::person",
    "//descendant::*/descendant::name",
    "//descendant::node()/child::person",
    "//self::node()",
]


def _keys(engine, query, **kwargs):
    return list(engine.evaluate(query, **kwargs).keys)


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def xmark_pair(self):
        store = load_xml(generate_document(0.005, seed=42), name="fused-xmark")
        return (
            VamanaEngine(store, fused=False),
            VamanaEngine(store, fused=True),
        )

    @pytest.mark.parametrize("query", QUERIES)
    def test_small_doc_parity(self, store, query):
        unfused = VamanaEngine(store, fused=False)
        fused = VamanaEngine(store, fused=True)
        assert _keys(fused, query) == _keys(unfused, query)

    @pytest.mark.parametrize("query", QUERIES)
    def test_xmark_parity(self, xmark_pair, query):
        unfused, fused = xmark_pair
        assert _keys(fused, query) == _keys(unfused, query)
        # Second evaluation exercises the plan-cache path.
        assert _keys(fused, query) == _keys(unfused, query)

    @pytest.mark.parametrize("query", QUERIES)
    def test_parity_under_guards(self, xmark_pair, query):
        unfused, fused = xmark_pair
        kwargs = {"timeout_ms": 60_000, "max_pages": 50_000_000}
        assert _keys(fused, query, **kwargs) == _keys(unfused, query, **kwargs)

    def test_fused_plans_pass_the_verifier(self, xmark_pair):
        _unfused, fused = xmark_pair
        for query in QUERIES:
            plan, _trace = fused.plan(query)
            verify_plan(plan)

    def test_tuple_mode_also_runs_fused_plans(self, store):
        tuple_engine = VamanaEngine(store, batched=False, fused=True)
        batched_engine = VamanaEngine(store, batched=True, fused=True)
        for query in QUERIES:
            assert _keys(tuple_engine, query) == _keys(batched_engine, query)


class TestMutationSafety:
    def test_insert_is_visible_to_the_next_fused_query(self, store):
        engine = VamanaEngine(store, fused=True)
        before = engine.evaluate("//node()//text()")
        site = next(iter(store.node_index.scan(None, None))).key
        store.insert_element(site.child(0), "person", text="Cyd")
        after = engine.evaluate("//node()//text()")
        assert len(after) == len(before) + 1
        assert after.metrics.plan_cache_misses == 1  # epoch bump re-planned

    def test_mid_scan_mutation_does_not_derail_the_cursor(self, store):
        """An insert between blocks bumps the epoch; the pinned cursor
        must revalidate and the scan still terminate in document order."""
        node = FusedPathScanNode([
            (Axis.DESCENDANT, NodeTest.node()),
            (Axis.DESCENDANT, NodeTest.text()),
        ])
        operator = FusedPathScanOperator(
            store, node, [], block=BlockConfig(enabled=True, size=2, coalesce=True)
        )
        from repro.mass.flexkey import FlexKey

        operator.reset(FlexKey.document())
        first = operator.next_block(2)
        assert len(first) == 2
        site = next(iter(store.node_index.scan(None, None))).key
        store.insert_element(site.child(0), "person", text="Cyd")
        emitted = list(first)
        while True:
            block = operator.next_block(2)
            emitted.extend(block)
            if len(block) < 2:
                break
        images = [key.sort_bytes for key in emitted]
        assert images == sorted(set(images))  # document order, no duplicates
        fresh = VamanaEngine(store, fused=True).evaluate("//node()//text()")
        assert set(images) <= {key.sort_bytes for key in fresh.keys}


class TestCountFastPathParity:
    @pytest.mark.parametrize(
        "path",
        [
            "//node()//text()",
            "//people/person/name",
            "//people//name",
            "//site//node()//text()",
        ],
    )
    def test_count_fast_path_is_fusion_blind(self, store, path):
        # count() goes through the expression fast path, which never
        # plans — the fusion knob must not change its answer.
        fused = VamanaEngine(store, fused=True)
        unfused = VamanaEngine(store, fused=False)
        assert (
            fused.evaluate_value(f"count({path})")
            == unfused.evaluate_value(f"count({path})")
        )

    @pytest.mark.parametrize("path", ["//people/person/name", "//people//name"])
    def test_count_agrees_with_materialized_fused_result(self, store, path):
        # On non-overlapping context chains the fast count is exact and
        # must equal the fused plan's materialized cardinality.
        fused = VamanaEngine(store, fused=True)
        materialized = float(len(fused.evaluate(path)))
        assert fused.evaluate_value(f"count({path})") == materialized
