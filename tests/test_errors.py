"""Exception hierarchy and message formatting."""

from __future__ import annotations

import pytest

from repro.errors import (
    DocumentTooLargeError,
    ExecutionError,
    KeyOrderError,
    OptimizerError,
    PlanError,
    ReproError,
    StorageError,
    UnsupportedFeatureError,
    XmlError,
    XPathSyntaxError,
)


def test_everything_is_a_repro_error():
    for error_type in (
        XmlError,
        XPathSyntaxError,
        UnsupportedFeatureError,
        DocumentTooLargeError,
        StorageError,
        KeyOrderError,
        PlanError,
        ExecutionError,
        OptimizerError,
    ):
        assert issubclass(error_type, ReproError)


def test_key_order_is_storage_error():
    assert issubclass(KeyOrderError, StorageError)


def test_xml_error_location():
    error = XmlError("bad tag", line=4, column=7)
    assert error.line == 4
    assert "line 4" in str(error)


def test_xml_error_without_location():
    assert str(XmlError("oops")) == "oops"


def test_xpath_error_pointer():
    error = XPathSyntaxError("unexpected", "//a[", 4)
    message = str(error)
    assert "//a[" in message
    assert message.splitlines()[-1].strip() == "^"
    assert message.splitlines()[-1].index("^") >= 4


def test_unsupported_feature_fields():
    error = UnsupportedFeatureError("galax", "axis following-sibling")
    assert error.engine == "galax"
    assert "galax does not support axis following-sibling" in str(error)


def test_document_too_large_fields():
    error = DocumentTooLargeError("jaxen", 11, 10)
    assert error.size_bytes == 11 and error.limit_bytes == 10
    assert "jaxen" in str(error)


def test_catch_all():
    with pytest.raises(ReproError):
        raise PlanError("anything")
