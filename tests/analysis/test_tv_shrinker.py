"""Delta-debugging shrinker: 1-minimality, safety guard, reproducer I/O."""

from __future__ import annotations

from repro.analysis.tv.shrinker import Reproducer, count_nodes, shrink_document

BIG = (
    "<site><people>"
    '<person id="p0"><name>v</name><address><city>w</city></address></person>'
    "<person><watches><watch/><watch/></watches></person>"
    "</people><people><person/></people></site>"
)


class TestShrink:
    def test_shrinks_to_single_witness(self):
        # Failure: "document contains a city element".
        def fails(xml):
            return "<city" in xml

        minimal = shrink_document(BIG, fails)
        assert fails(minimal)
        assert count_nodes(minimal) < count_nodes(BIG)
        # 1-minimal: the shrinker cannot delete anything else, and the
        # witness chain site>people>person>address>city is exactly it.
        assert minimal == (
            "<site><people><person><address><city/></address></person>"
            "</people></site>"
        )

    def test_minimal_on_structural_predicate(self):
        def fails(xml):
            return xml.count("<person") >= 2

        minimal = shrink_document(BIG, fails)
        assert fails(minimal)
        # 1-minimal under greedy single deletions: two bare persons, each
        # in a container, under the root.
        assert minimal == (
            "<site><people><person/></people>"
            "<people><person/></people></site>"
        )

    def test_attributes_and_text_are_deletable(self):
        def fails(xml):
            return "person" in xml

        minimal = shrink_document(BIG, fails)
        assert "id=" not in minimal and ">v<" not in minimal

    def test_non_reproducing_failure_returns_original(self):
        # A predicate sensitive to serialization details the normalizer
        # does not preserve: the shrinker must hand back the original.
        def fails(xml):
            return xml == BIG

        assert shrink_document(BIG, fails) == BIG

    def test_count_nodes(self):
        assert count_nodes("<site/>") == 1
        assert count_nodes('<site><a x="1">t</a></site>') == 4


class TestReproducer:
    def test_json_round_trip(self, tmp_path):
        reproducer = Reproducer(
            rule="broken-pushdown",
            expression="//people/person[1]",
            document="<site><people><person/></people></site>",
            node_count=3,
            discrepancies=("pre vs post: 1 vs 0 keys",),
        )
        path = tmp_path / "repro.json"
        reproducer.write(str(path))
        loaded = Reproducer.load(str(path))
        assert loaded == reproducer
        assert "broken-pushdown" in loaded.describe()
