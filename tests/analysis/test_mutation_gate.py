"""Mutation test: the verifier gate rejects a semantics-breaking rewrite.

``DropStepRule`` below is a deliberately broken "optimization": it deletes
the top step of a path and turns off duplicate elimination, producing a
plan that is strictly cheaper *and strictly wrong*.  The greedy optimizer
would happily take it on cost alone — the per-rewrite invariant gate is
what keeps it out of the final plan.
"""

from __future__ import annotations

from repro.algebra.plan import PlanBase, QueryPlan, StepNode
from repro.engine.engine import VamanaEngine
from repro.errors import PlanInvariantError
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.rules import RewriteRule


class DropStepRule(RewriteRule):
    """Broken on purpose: drops the outermost step and the distinct flag."""

    name = "drop-step"
    paper_ref = "nowhere — this rule is wrong by construction"

    def matches(self, plan: QueryPlan, node: PlanBase) -> bool:
        return (
            node is plan.root.context_child
            and isinstance(node, StepNode)
            and node.context_child is not None
        )

    def apply(self, plan: QueryPlan, node: PlanBase) -> None:
        plan.root.context_child = node.context_child
        plan.root.distinct = False
        plan.renumber()


QUERY = "//person/address"


def test_gate_rejects_the_broken_rule(xmark_store):
    engine = VamanaEngine(xmark_store)
    baseline = engine.evaluate(QUERY, optimize=False)

    optimizer = Optimizer(xmark_store, rules=(DropStepRule(),), verify=True)
    plan, trace = optimizer.optimize(engine.compile(QUERY))

    assert trace.invariant_errors, "gate never fired"
    assert all(error.rule == "drop-step" for error in trace.invariant_errors)
    assert any("PlanInvariantError" in failure for failure in trace.rule_failures)
    assert plan.root.distinct  # the broken flag flip never landed

    result = engine.execute(plan, None, trace)
    assert result.key_set() == baseline.key_set()


def test_without_the_gate_the_broken_rule_wins(xmark_store):
    engine = VamanaEngine(xmark_store)
    baseline = engine.evaluate(QUERY, optimize=False)

    optimizer = Optimizer(xmark_store, rules=(DropStepRule(),), verify=False)
    plan, trace = optimizer.optimize(engine.compile(QUERY))

    # Cost-only greediness accepts the cheaper, wrong plan: this is the
    # failure mode the verification gate exists to prevent.
    assert not trace.invariant_errors
    assert not plan.root.distinct
    result = engine.execute(plan, None, trace)
    assert result.key_set() != baseline.key_set()


def test_engine_wires_the_gate_in_by_default(xmark_store):
    engine = VamanaEngine(xmark_store)
    assert engine.optimizer.verifier is not None
    unverified = VamanaEngine(xmark_store, verify_rewrites=False)
    assert unverified.optimizer.verifier is None


def test_gate_error_carries_rule_and_violations(xmark_store):
    optimizer = Optimizer(xmark_store, rules=(DropStepRule(),), verify=True)
    engine = VamanaEngine(xmark_store)
    _plan, trace = optimizer.optimize(engine.compile(QUERY))
    error = trace.invariant_errors[0]
    assert isinstance(error, PlanInvariantError)
    assert error.violations
    assert "duplicate-elimination flag" in str(error)


class TestDynamicValidationMode:
    """The opt-in differential-oracle gate behind ``validate_rewrites``.

    ``BrokenPushdownRule`` drops the positional-predicate guard, a bug
    the *static* invariant checks cannot see (the rewritten plan is
    structurally fine, just wrong).  The dynamic oracle executes both
    plans and rejects the rewrite on the result divergence.
    """

    QUERY = "//people/person[1]"

    def _store(self):
        from repro.mass.loader import load_xml

        # Two populated containers (so the positional predicate selects
        # two persons, not one) plus empty ones that make COUNT(people)
        # high enough for the broken pushdown to win on cost.
        return load_xml(
            "<site><people><person/></people>"
            "<people><person/><person/></people>"
            + "<people/>" * 8
            + "</site>",
            name="dynamic-gate",
        )

    def test_static_gate_alone_misses_the_bug(self):
        from repro.analysis.tv.mutations import BrokenPushdownRule

        store = self._store()
        engine = VamanaEngine(store)
        baseline = engine.evaluate(self.QUERY, optimize=False)
        optimizer = Optimizer(store, rules=(BrokenPushdownRule(),), verify=True)
        plan, trace = optimizer.optimize(engine.compile(self.QUERY))
        assert not trace.invariant_errors  # structurally plausible...
        result = engine.execute(plan, None, trace)
        assert result.key_set() != baseline.key_set()  # ...but wrong

    def test_differential_oracle_rejects_it(self):
        from repro.analysis.tv.mutations import BrokenPushdownRule
        from repro.analysis.tv.oracle import DifferentialOracle

        store = self._store()
        engine = VamanaEngine(store)
        baseline = engine.evaluate(self.QUERY, optimize=False)
        optimizer = Optimizer(
            store,
            rules=(BrokenPushdownRule(),),
            verify=True,
            validate=DifferentialOracle(store),
        )
        plan, trace = optimizer.optimize(engine.compile(self.QUERY))
        assert trace.invariant_errors, "dynamic gate never fired"
        result = engine.execute(plan, None, trace)
        assert result.key_set() == baseline.key_set()

    def test_engine_level_opt_in(self):
        store = self._store()
        validating = VamanaEngine(store, validate_rewrites=True)
        assert validating.optimizer.verifier is not None
        assert validating.optimizer.verifier.oracle is not None
        default = VamanaEngine(store)
        assert default.optimizer.verifier.oracle is None
        # And the validating engine still answers queries correctly.
        assert (
            validating.evaluate(self.QUERY).key_set()
            == default.evaluate(self.QUERY, optimize=False).key_set()
        )
