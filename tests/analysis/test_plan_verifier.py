"""The static plan verifier: property inference and structural invariants."""

from __future__ import annotations

import pytest

from repro.errors import PlanInvariantError
from repro.model import Axis, NodeTest
from repro.algebra.builder import build_default_plan
from repro.algebra.plan import (
    ExistsNode,
    PlanNode,
    QueryPlan,
    RootNode,
    StepNode,
    UnionNode,
)
from repro.analysis.plan_verifier import (
    DOCUMENT_ORDER,
    REVERSE_ORDER,
    UNORDERED,
    PlanVerifier,
    describe_properties,
    infer_properties,
    step_statically_empty,
    verify_plan,
)


def _plan(root: RootNode, expression: str = "test") -> QueryPlan:
    plan = QueryPlan(root, expression)
    plan.renumber()
    return plan


class TestPropertyInference:
    def test_forward_leaf_step_is_document_ordered_and_distinct(self):
        step = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        plan = _plan(RootNode(step))
        props = infer_properties(plan)
        assert props[step.op_id].ordering == DOCUMENT_ORDER
        assert props[step.op_id].distinct

    def test_reverse_leaf_step_reports_reverse_order(self):
        step = StepNode(Axis.ANCESTOR, NodeTest.name_test("person"))
        plan = _plan(RootNode(step, distinct=False))
        props = infer_properties(plan)
        assert props[step.op_id].ordering == REVERSE_ORDER

    def test_chained_step_loses_order_and_distinctness(self):
        inner = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        outer = StepNode(Axis.CHILD, NodeTest.name_test("address"), inner)
        plan = _plan(RootNode(outer, distinct=False))
        props = infer_properties(plan)
        assert props[outer.op_id].ordering == UNORDERED
        assert not props[outer.op_id].distinct

    def test_distinct_root_restores_order_and_distinctness(self):
        inner = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        outer = StepNode(Axis.CHILD, NodeTest.name_test("address"), inner)
        root = RootNode(outer, distinct=True)
        plan = _plan(root)
        props = infer_properties(plan)
        assert props[root.op_id].ordering == DOCUMENT_ORDER
        assert props[root.op_id].distinct

    def test_self_axis_is_a_pure_filter(self):
        inner = StepNode(Axis.DESCENDANT, NodeTest.name_test("name"))
        selferize = StepNode(Axis.SELF, NodeTest.name_test("name"), inner)
        plan = _plan(RootNode(selferize, distinct=False))
        props = infer_properties(plan)
        assert props[selferize.op_id].ordering == DOCUMENT_ORDER
        assert props[selferize.op_id].distinct

    def test_union_output_is_ordered_and_distinct(self):
        union = UnionNode(
            [
                StepNode(Axis.DESCENDANT, NodeTest.name_test("person")),
                StepNode(Axis.DESCENDANT, NodeTest.name_test("item")),
            ]
        )
        plan = _plan(RootNode(union, distinct=False))
        props = infer_properties(plan)
        assert props[union.op_id].ordering == DOCUMENT_ORDER
        assert props[union.op_id].distinct

    def test_attribute_axis_with_text_test_is_statically_empty(self):
        assert step_statically_empty(Axis.ATTRIBUTE, NodeTest.text())
        assert step_statically_empty(Axis.ATTRIBUTE, NodeTest.comment())
        assert not step_statically_empty(Axis.ATTRIBUTE, NodeTest.name_test("id"))
        assert not step_statically_empty(Axis.CHILD, NodeTest.text())
        step = StepNode(Axis.ATTRIBUTE, NodeTest.text())
        plan = _plan(RootNode(step))
        props = infer_properties(plan)
        assert props[step.op_id].statically_empty

    def test_predicate_paths_are_context_dependent(self):
        probe = StepNode(Axis.CHILD, NodeTest.name_test("watch"))
        carrier = StepNode(Axis.DESCENDANT, NodeTest.name_test("watches"))
        carrier.predicates = [ExistsNode(probe)]
        plan = _plan(RootNode(carrier))
        props = infer_properties(plan)
        assert props[probe.op_id].context_dependent

    def test_every_compiled_paper_query_is_guard_threaded(self):
        from repro.bench.hotpath import PAPER_QUERIES

        for query in PAPER_QUERIES.values():
            plan = build_default_plan(query)
            for props in infer_properties(plan).values():
                assert props.guard_threaded

    def test_describe_properties_mentions_every_operator(self):
        plan = build_default_plan("//person/address")
        text = describe_properties(plan)
        for node in plan.walk():
            if isinstance(node, PlanNode):
                assert node.describe() in text


class TestStructuralInvariants:
    def test_default_plans_verify_clean(self):
        from repro.bench.hotpath import PAPER_QUERIES

        verifier = PlanVerifier()
        for query in PAPER_QUERIES.values():
            assert verifier.violations(build_default_plan(query)) == []

    def test_aliased_operator_is_detected(self):
        shared = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        union = UnionNode([shared, shared])
        plan = _plan(RootNode(union))
        problems = PlanVerifier().violations(plan)
        assert any("shared by 2 parents" in problem for problem in problems)

    def test_cyclic_plan_is_detected_without_hanging(self):
        step = StepNode(Axis.CHILD, NodeTest.name_test("a"))
        root = RootNode(step)
        step.context_child = root  # malformed: cycle back to the root
        plan = QueryPlan(root, "cycle")
        problems = PlanVerifier().violations(plan)
        assert any("cycle" in problem for problem in problems)

    def test_duplicate_operator_ids_are_detected(self):
        inner = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        outer = StepNode(Axis.CHILD, NodeTest.name_test("address"), inner)
        plan = _plan(RootNode(outer))
        inner.op_id = outer.op_id  # dangling id after a sloppy rewrite
        problems = PlanVerifier().violations(plan)
        assert any("duplicate operator id" in problem for problem in problems)

    def test_nested_root_node_is_detected(self):
        nested = RootNode(StepNode(Axis.CHILD, NodeTest.name_test("a")))
        outer = StepNode(Axis.DESCENDANT, NodeTest.name_test("b"), nested)
        plan = _plan(RootNode(outer))
        problems = PlanVerifier().violations(plan)
        assert any("nested RootNode" in problem for problem in problems)

    def test_unknown_operator_type_breaks_guard_threading(self):
        class MysteryNode(PlanNode):
            def symbol(self) -> str:
                return "?"

            def clone(self):
                return self._clone_shared(MysteryNode())

        plan = _plan(RootNode(MysteryNode()))
        problems = PlanVerifier().violations(plan)
        assert any("guard threading" in problem for problem in problems)
        with pytest.raises(PlanInvariantError):
            verify_plan(plan)

    def test_verify_raises_with_all_violations_collected(self):
        shared = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        plan = _plan(RootNode(UnionNode([shared, shared])))
        with pytest.raises(PlanInvariantError) as caught:
            PlanVerifier().verify(plan, rule="test-rule")
        assert caught.value.rule == "test-rule"
        assert caught.value.violations


class TestRewriteGate:
    def test_identical_clone_passes(self):
        plan = build_default_plan("//person/address")
        PlanVerifier().check_rewrite(plan, plan.clone(), "noop")

    def test_distinct_flag_change_is_rejected(self):
        plan = build_default_plan("//person/address")
        broken = plan.clone()
        broken.root.distinct = False
        with pytest.raises(PlanInvariantError) as caught:
            PlanVerifier().check_rewrite(plan, broken, "flag-dropper")
        assert "duplicate-elimination flag" in str(caught.value)
        assert caught.value.rule == "flag-dropper"

    def test_order_regression_under_nondistinct_root_is_rejected(self):
        leaf = StepNode(Axis.DESCENDANT, NodeTest.name_test("address"))
        plan = _plan(RootNode(leaf, distinct=False))
        inner = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        chained = StepNode(Axis.CHILD, NodeTest.name_test("address"), inner)
        rewritten = _plan(RootNode(chained, distinct=False))
        with pytest.raises(PlanInvariantError) as caught:
            PlanVerifier().check_rewrite(plan, rewritten, "order-breaker")
        assert "ordering regressed" in str(caught.value)

    def test_same_rewrite_is_fine_under_distinct_root(self):
        leaf = StepNode(Axis.DESCENDANT, NodeTest.name_test("address"))
        plan = _plan(RootNode(leaf, distinct=True))
        inner = StepNode(Axis.DESCENDANT, NodeTest.name_test("person"))
        chained = StepNode(Axis.CHILD, NodeTest.name_test("address"), inner)
        rewritten = _plan(RootNode(chained, distinct=True))
        PlanVerifier().check_rewrite(plan, rewritten, "ok")

    def test_new_statically_empty_step_is_rejected(self):
        plan = _plan(RootNode(StepNode(Axis.DESCENDANT, NodeTest.name_test("a"))))
        bad_leaf = StepNode(Axis.ATTRIBUTE, NodeTest.text())
        rewritten = _plan(RootNode(bad_leaf))
        with pytest.raises(PlanInvariantError) as caught:
            PlanVerifier().check_rewrite(plan, rewritten, "empty-maker")
        assert "statically-empty" in str(caught.value)
