"""Translation validation of path fusion over the bounded corpus.

The fusion rewrite is forced (bypassing the cost gate) at every matching
site of a family of chain queries, and on **every** document of the
quick TV corpus the fused plan must agree with the unfused plan, across
the tuple and batched pipelines, and with the DOM baseline — the same
discipline ``repro verify-rules`` applies, focused on the fusion rule
with guards exercised both off and on.
"""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.resilience.guard import QueryGuard
from repro.xmlkit.dom import build_dom
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan, dedup_document_order
from repro.algebra.plan import FusedPathScanNode, QueryPlan
from repro.analysis.tv.oracle import (
    MODES,
    dom_key_map,
    dom_reference,
    evaluate_modes,
)
from repro.analysis.tv.runner import corpus
from repro.optimizer.cleanup import cleanup_plan
from repro.optimizer.rules import PathFusionRule
from repro.optimizer.util import find_by_id

#: Chains over the TV-corpus vocabulary; every one must have at least one
#: fusion site, so a silently dead rule fails the suite loudly.
CHAIN_QUERIES = (
    "//people/person/name",
    "//person/name/text()",
    "//people//name",
    "//people/person/address/city",
    "/descendant-or-self::node()/child::person/descendant::text()",
    "//person//node()",
)


def _fused_pairs() -> list[tuple[str, QueryPlan, QueryPlan]]:
    """(expression, unfused plan, force-fused plan) per query."""
    rule = PathFusionRule()
    pairs = []
    for expression in CHAIN_QUERIES:
        plan = build_default_plan(expression)
        cleanup_plan(plan)
        sites = [node for node in plan.walk() if rule.matches(plan, node)]
        assert sites, f"no fusion site on {expression!r}"
        fused = plan.clone()
        target = find_by_id(fused, sites[0].op_id)
        rule.apply(fused, target)
        cleanup_plan(fused)
        assert any(isinstance(n, FusedPathScanNode) for n in fused.walk())
        pairs.append((expression, plan, fused))
    return pairs


@pytest.fixture(scope="module")
def pairs():
    return _fused_pairs()


@pytest.fixture(scope="module")
def documents():
    return corpus(quick=True)


def test_fused_plans_agree_with_unfused_and_dom(pairs, documents):
    failures = []
    for xml_text in documents:
        store = load_xml(xml_text, name="tv-fused")
        document = build_dom(xml_text)
        key_map = dom_key_map(document)
        for expression, plan, fused in pairs:
            reference = dom_reference(expression, document, key_map)
            before = evaluate_modes(plan, store)
            after = evaluate_modes(fused, store)
            for mode, _block in MODES:
                if before[mode] != after[mode] or after[mode] != reference:
                    failures.append((xml_text, expression, mode))
    assert not failures, failures[:5]


def test_fused_plans_agree_under_guards(pairs, documents):
    # A generous guard threads checkpoints through the fused scan without
    # tripping; results must be unchanged.  Sampled corpus: the guard
    # path is identical across documents.
    failures = []
    for xml_text in documents[::7]:
        store = load_xml(xml_text, name="tv-fused-guard")
        for expression, plan, fused in pairs:
            for mode, block in MODES:
                guard = QueryGuard(timeout_ms=60_000, max_pages=50_000_000)
                before = dedup_document_order(
                    list(execute_plan(plan, store, guard=guard, block=block))
                )
                guard = QueryGuard(timeout_ms=60_000, max_pages=50_000_000)
                after = dedup_document_order(
                    list(execute_plan(fused, store, guard=guard, block=block))
                )
                if before != after:
                    failures.append((xml_text, expression, mode))
    assert not failures, failures[:5]


def test_result_guard_trips_on_fused_scans(documents):
    # max_results must abort a fused scan exactly as it aborts an
    # unfused one: the guard error propagates, no partial result leaks.
    from repro.errors import BudgetExceededError
    from repro.engine.engine import VamanaEngine

    store = load_xml(documents[-1], name="tv-fused-trip")
    engine = VamanaEngine(store, fused=True)
    full = engine.evaluate("//person//node()")
    if len(full) < 2:
        pytest.skip("corpus tail document too small to trip the guard")
    with pytest.raises(BudgetExceededError):
        engine.evaluate("//person//node()", max_results=1)
