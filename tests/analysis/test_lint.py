"""The repo-invariant linter: clean on the shipped tree, sharp on fixtures."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.lint import lint_file, lint_paths, main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _lint_source(tmp_path: Path, source: str, name: str = "module.py"):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(str(target))


def _rules(violations) -> list[str]:
    return [violation.rule for violation in violations]


class TestShippedTreeIsClean:
    def test_src_repro_has_no_violations(self):
        violations = lint_paths([str(SRC_REPRO)])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_module_entry_point_exits_zero(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(SRC_REPRO)],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "RuntimeWarning" not in completed.stderr


class TestGuardCheckpoint:
    def test_missing_checkpoint_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ScanOperator:
                def next_tuple(self):
                    return self.source.pop()
            """,
        )
        assert _rules(violations) == ["VAM001"]
        assert "never calls" in violations[0].message

    def test_emit_before_checkpoint_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ScanOperator:
                def next_tuple(self):
                    if self.buffered:
                        return self.buffered.pop()
                    self.guard.checkpoint()
                    return self.advance()
            """,
        )
        assert _rules(violations) == ["VAM001"]
        assert "before its first guard.checkpoint()" in violations[0].message

    def test_checkpoint_first_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ScanOperator:
                def next_tuple(self):
                    self.guard.checkpoint()
                    return self.advance()
            """,
        )
        assert violations == []

    def test_raise_only_base_class_is_exempt(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class PlanOperator:
                def next_tuple(self):
                    raise NotImplementedError
            """,
        )
        assert violations == []

    def test_next_block_missing_checkpoint_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ScanOperator:
                def next_block(self, max_n):
                    return self.source[:max_n]
            """,
        )
        assert _rules(violations) == ["VAM001"]
        assert "next_block" in violations[0].message
        assert "never calls" in violations[0].message

    def test_next_block_emit_before_checkpoint_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ScanOperator:
                def next_block(self, max_n):
                    if self.buffered:
                        return self.buffered[:max_n]
                    self.guard.checkpoint()
                    return self.advance(max_n)
            """,
        )
        assert _rules(violations) == ["VAM001"]
        assert "next_block" in violations[0].message
        assert "before its first guard.checkpoint()" in violations[0].message

    def test_next_block_checkpoint_first_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ScanOperator:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    return self.advance(max_n)
            """,
        )
        assert violations == []

    def test_next_block_raise_only_base_is_exempt(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class PlanOperator:
                def next_block(self, max_n):
                    raise NotImplementedError
            """,
        )
        assert violations == []


class TestScanCadence:
    """VAM001 (cont.): yield-ing *scan methods inside operator classes."""

    def test_scan_generator_without_checkpoint_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class FusedOperator:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    return list(self._scan())

                def _scan(self):
                    for record in self.records:
                        yield record.key
            """,
        )
        assert _rules(violations) == ["VAM001"]
        assert "never calls guard.checkpoint()" in violations[0].message

    def test_unbounded_cadence_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class FusedOperator:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    return list(self._scan())

                def _scan(self):
                    self.guard.checkpoint()
                    for record in self.records:
                        yield record.key
            """,
        )
        assert _rules(violations) == ["VAM001"]
        assert "bounded checkpoint cadence" in violations[0].message

    def test_literal_cadence_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class FusedOperator:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    return list(self._scan())

                def _scan(self):
                    since = 0
                    for record in self.records:
                        since += 1
                        if since >= 64:
                            self.guard.checkpoint()
                            since = 0
                        yield record.key
            """,
        )
        assert violations == []

    def test_module_constant_cadence_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            _CHECKPOINT_EVERY = 64

            class FusedOperator:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    return list(self._scan())

                def _scan(self):
                    since = 0
                    for record in self.records:
                        since += 1
                        if since >= _CHECKPOINT_EVERY:
                            self.guard.checkpoint()
                            since = 0
                        yield record.key
            """,
        )
        assert violations == []

    def test_cadence_above_limit_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class FusedOperator:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    return list(self._scan())

                def _scan(self):
                    since = 0
                    for record in self.records:
                        since += 1
                        if since >= 4096:
                            self.guard.checkpoint()
                            since = 0
                        yield record.key
            """,
        )
        assert _rules(violations) == ["VAM001"]
        assert "bounded checkpoint cadence" in violations[0].message

    def test_non_generator_scan_methods_are_ignored(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class FusedOperator:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    return self.scan_count()

                def scan_count(self):
                    return len(self.records)
            """,
        )
        assert violations == []

    def test_scan_generators_outside_operators_are_ignored(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class Corpus:
                def scan_documents(self):
                    for doc in self.docs:
                        yield doc
            """,
        )
        assert violations == []


class TestExceptionSwallowing:
    def test_blind_except_exception_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def sandbox(rule):
                try:
                    rule.apply()
                except Exception:
                    pass
            """,
        )
        assert _rules(violations) == ["VAM002"]
        assert "swallows query-guard errors" in violations[0].message

    def test_preceding_guard_reraise_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def sandbox(rule):
                try:
                    rule.apply()
                except (KeyboardInterrupt, QueryTimeoutError,
                        BudgetExceededError, QueryCancelledError):
                    raise
                except Exception:
                    pass
            """,
        )
        assert violations == []

    def test_base_class_reraise_counts_as_coverage(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def sandbox(rule):
                try:
                    rule.apply()
                except ExecutionError:
                    raise
                except Exception:
                    pass
            """,
        )
        assert violations == []

    def test_partial_guard_reraise_is_still_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def sandbox(rule):
                try:
                    rule.apply()
                except QueryTimeoutError:
                    raise
                except Exception:
                    pass
            """,
        )
        assert _rules(violations) == ["VAM002"]

    def test_bare_except_must_also_spare_keyboard_interrupt(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def sandbox(rule):
                try:
                    rule.apply()
                except (QueryTimeoutError, BudgetExceededError,
                        QueryCancelledError):
                    raise
                except:
                    pass
            """,
        )
        assert _rules(violations) == ["VAM002"]
        assert "KeyboardInterrupt" in violations[0].message

    def test_bare_raise_inside_handler_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def sandbox(rule):
                try:
                    rule.apply()
                except Exception:
                    log()
                    raise
            """,
        )
        assert violations == []

    def test_narrow_handlers_are_ignored(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def parse(text):
                try:
                    return int(text)
                except ValueError:
                    return None
            """,
        )
        assert violations == []


class TestPersistenceDecode:
    # VAM003 keys on the path suffix, so fixtures live at mass/persistence.py.
    PATH = "mass/persistence.py"

    def test_uncovered_unpack_in_public_function_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import struct

            def open_store(raw):
                (count,) = struct.unpack_from("<I", raw, 0)
                return count
            """,
            self.PATH,
        )
        assert _rules(violations) == ["VAM003"]
        assert "struct.error" in violations[0].message

    def test_converted_unpack_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import struct

            class StorageError(Exception):
                pass

            def open_store(raw):
                try:
                    (count,) = struct.unpack_from("<I", raw, 0)
                except struct.error as error:
                    raise StorageError(str(error)) from error
                return count
            """,
            self.PATH,
        )
        assert violations == []

    def test_module_error_tuple_counts_as_coverage(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import struct

            _DECODE_ERRORS = (struct.error, ValueError)

            def open_store(raw):
                try:
                    (count,) = struct.unpack_from("<I", raw, 0)
                except _DECODE_ERRORS as error:
                    raise RuntimeError(str(error)) from error
                return count
            """,
            self.PATH,
        )
        assert violations == []

    def test_leak_through_private_helper_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import struct

            def _read_header(raw):
                return struct.unpack_from("<I", raw, 0)

            def open_store(raw):
                return _read_header(raw)
            """,
            self.PATH,
        )
        assert _rules(violations) == ["VAM003"]
        assert "via a helper" in violations[0].message

    def test_helper_leak_converted_at_call_site_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import struct

            def _read_header(raw):
                return struct.unpack_from("<I", raw, 0)

            def open_store(raw):
                try:
                    return _read_header(raw)
                except struct.error as error:
                    raise RuntimeError(str(error)) from error
            """,
            self.PATH,
        )
        assert violations == []

    def test_rule_only_applies_to_persistence_module(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import struct

            def open_store(raw):
                return struct.unpack_from("<I", raw, 0)
            """,
            "mass/other.py",
        )
        assert violations == []


class TestWallClock:
    def test_clock_call_in_operator_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import time

            class ScanOperator:
                def advance(self):
                    self.started = time.monotonic()
            """,
        )
        assert _rules(violations) == ["VAM004"]
        assert "time.monotonic" in violations[0].message

    def test_clock_call_in_block_operator_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import time

            class BatchedScan:
                def next_block(self, max_n):
                    self.guard.checkpoint()
                    self.started = time.perf_counter()
                    return []
            """,
        )
        assert _rules(violations) == ["VAM004"]
        assert "time.perf_counter" in violations[0].message

    def test_clock_as_default_argument_is_fine(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import time

            class ScanOperator:
                def __init__(self, clock=time.monotonic):
                    self.clock = clock
            """,
        )
        assert violations == []

    def test_non_operator_classes_may_use_clocks(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import time

            class Stopwatch:
                def start(self):
                    self.at = time.perf_counter()
            """,
        )
        assert violations == []


class TestDriver:
    def test_main_returns_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 0

    def test_main_returns_one_and_prints_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "class ScanOperator:\n"
            "    def next_tuple(self):\n"
            "        return 1\n",
            encoding="utf-8",
        )
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr()
        assert "VAM001" in out.out

    def test_main_returns_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_syntax_errors_become_vam000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def (:\n", encoding="utf-8")
        violations = lint_file(str(broken))
        assert _rules(violations) == ["VAM000"]

    def test_module_entry_point_flags_seeded_violation(self, tmp_path):
        bad = tmp_path / "mass"
        bad.mkdir()
        (bad / "persistence.py").write_text(
            "import struct\n\n"
            "def open_store(raw):\n"
            "    return struct.unpack_from('<I', raw, 0)\n",
            encoding="utf-8",
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 1
        assert "VAM003" in completed.stdout


class TestRuleHygiene:
    """VAM005: paper_ref on rule classes, gated apply() call sites."""

    def test_rule_without_paper_ref_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ShinyNewRule(RewriteRule):
                name = "shiny-new"

                def matches(self, plan, node):
                    return True
            """,
            name="optimizer/rules/shiny.py",
        )
        assert _rules(violations) == ["VAM005"]
        assert "paper_ref" in violations[0].message

    def test_empty_paper_ref_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ShinyNewRule(RewriteRule):
                paper_ref = "   "
            """,
            name="optimizer/rules/shiny.py",
        )
        assert _rules(violations) == ["VAM005"]

    def test_declared_paper_ref_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ShinyNewRule(RewriteRule):
                paper_ref = "Figure 11"
            """,
            name="optimizer/rules/shiny.py",
        )
        assert violations == []

    def test_abstract_base_is_exempt(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class RewriteRule:
                name = "rule"
            """,
            name="optimizer/rules/base.py",
        )
        assert violations == []

    def test_non_rule_classes_are_ignored(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class Helper:
                pass
            """,
            name="optimizer/rules/helpers.py",
        )
        assert violations == []

    def test_ungated_apply_outside_rules_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def improve(plan, rule, node):
                candidate = plan.clone()
                rule.apply(candidate, node)
                return candidate
            """,
            name="optimizer/optimizer.py",
        )
        assert _rules(violations) == ["VAM005"]
        assert "check_rewrite" in violations[0].message

    def test_gated_apply_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def improve(plan, rule, node, verifier):
                candidate = plan.clone()
                rule.apply(candidate, node)
                verifier.check_rewrite(plan, candidate, rule.name)
                return candidate
            """,
            name="optimizer/optimizer.py",
        )
        assert violations == []

    def test_apply_inside_rules_package_is_not_gated(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class ComposedRule(RewriteRule):
                paper_ref = "Section VI"

                def apply(self, plan, node):
                    self.inner_rule.apply(plan, node)
            """,
            name="optimizer/rules/composed.py",
        )
        assert violations == []

    def test_unrelated_apply_receivers_are_ignored(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def fold(plan, patch):
                patch.apply(plan)
            """,
            name="optimizer/optimizer.py",
        )
        assert violations == []


class TestSnapshotRelease:
    """VAM006: every snapshot acquire in the serving package is released."""

    NAME = "serving/handlers.py"

    def test_with_statement_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def serve(manager):
                with manager.acquire() as snapshot:
                    return snapshot.epoch
            """,
            name=self.NAME,
        )
        assert violations == []

    def test_try_finally_release_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def serve(manager):
                snapshot = manager.acquire()
                try:
                    return snapshot.epoch
                finally:
                    snapshot.release()
            """,
            name=self.NAME,
        )
        assert violations == []

    def test_returning_the_pin_transfers_ownership(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def pin(manager):
                return manager.acquire()
            """,
            name=self.NAME,
        )
        assert violations == []

    def test_bare_acquire_call_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def leak(manager):
                manager.acquire()
            """,
            name=self.NAME,
        )
        assert _rules(violations) == ["VAM006"]
        assert "released on all exits" in violations[0].message

    def test_assignment_without_finally_release_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def leak(manager):
                snapshot = manager.acquire()
                value = snapshot.epoch
                snapshot.release()  # skipped if .epoch raises
                return value
            """,
            name=self.NAME,
        )
        assert _rules(violations) == ["VAM006"]

    def test_release_in_nested_function_does_not_count(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def leak(manager):
                snapshot = manager.acquire()

                def cleanup():
                    try:
                        pass
                    finally:
                        snapshot.release()

                return cleanup
            """,
            name=self.NAME,
        )
        assert _rules(violations) == ["VAM006"]

    def test_outside_serving_package_is_ignored(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def leak(manager):
                manager.acquire()
            """,
            name="engine/handlers.py",
        )
        assert violations == []

    def test_shipped_serving_package_is_clean(self):
        violations = lint_paths([str(SRC_REPRO / "serving")])
        assert _rules(violations) == []


class TestSnapshotReleaseLeakWindow:
    """VAM006 strengthening: the acquire must sit inside the releasing
    try's body, or the try must be the statement immediately after it —
    anything in between is a window where an exception leaks the pin."""

    NAME = "serving/handlers.py"

    def test_acquire_inside_the_releasing_try_body_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def serve(manager):
                snapshot = None
                try:
                    snapshot = manager.acquire()
                    return snapshot.epoch
                finally:
                    if snapshot is not None:
                        snapshot.release()
            """,
            name=self.NAME,
        )
        assert violations == []

    def test_conditional_with_statement_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def serve(manager, fast):
                if fast:
                    with manager.acquire() as snapshot:
                        return snapshot.epoch
                return None
            """,
            name=self.NAME,
        )
        assert violations == []

    def test_acquire_in_comprehension_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def pins(manager):
                snaps = [manager.acquire() for _ in range(3)]
                try:
                    return len(snaps)
                finally:
                    for s in snaps:
                        s.release()
            """,
            name=self.NAME,
        )
        assert _rules(violations) == ["VAM006"]
        assert "released on all exits" in violations[0].message

    def test_early_return_between_acquire_and_try_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def serve(manager, skip):
                snapshot = manager.acquire()
                if skip:
                    return None
                try:
                    return snapshot.epoch
                finally:
                    snapshot.release()
            """,
            name=self.NAME,
        )
        assert _rules(violations) == ["VAM006"]
        assert "leak before its releasing try" in violations[0].message

    def test_any_statement_between_acquire_and_try_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def serve(manager, log):
                snapshot = manager.acquire()
                log.note("acquired")
                try:
                    return snapshot.epoch
                finally:
                    snapshot.release()
            """,
            name=self.NAME,
        )
        assert _rules(violations) == ["VAM006"]

    def test_try_as_immediate_next_statement_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            def serve(manager):
                snapshot = manager.acquire()
                try:
                    return snapshot.epoch
                finally:
                    snapshot.release()
            """,
            name=self.NAME,
        )
        assert violations == []
