"""VAM007/VAM008/VAM009: static lockset and lock-order analysis.

Fixtures live under a ``serving/`` (or ``engine/``) subdirectory of
``tmp_path`` because the rules only fire inside the concurrency-checked
packages.  The mutation tests at the bottom are the point of the suite:
strip one real ``with self.<lock>:`` from a shipped module and VAM007
must kill the mutant.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis.concurrency.static import lock_order_edges
from repro.analysis.lint import lint_file, lint_paths, main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _lint_source(tmp_path: Path, source: str, name: str = "serving/module.py"):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(str(target))


def _lint_tree(tmp_path: Path, source: str, name: str = "serving/module.py"):
    """Like ``_lint_source`` but through ``lint_paths`` so VAM008 runs."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([str(tmp_path)])


def _rules(violations) -> list[str]:
    return [violation.rule for violation in violations]


class TestGuardedFieldConsistency:
    def test_unlocked_write_next_to_locked_write_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def racy(self):
                    self.value += 1
            """,
        )
        assert _rules(violations) == ["VAM007"]
        assert "Counter.value" in violations[0].message
        assert "_lock" in violations[0].message

    def test_unlocked_read_is_flagged_too(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def peek(self):
                    return self.value
            """,
        )
        assert _rules(violations) == ["VAM007"]
        assert "read" in violations[0].message

    def test_consistently_locked_class_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def peek(self):
                    with self._lock:
                        return self.value
            """,
        )
        assert violations == []

    def test_never_locked_mutable_field_is_a_dropped_lock_smell(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.log = []

                def record(self, item):
                    self.log.append(item)
            """,
        )
        assert _rules(violations) == ["VAM007"]
        assert "dropped-lock" in violations[0].message

    def test_init_and_locked_suffix_methods_are_exempt(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.depth = 0
                    self.depth = self.depth + 1

                def push(self):
                    with self._lock:
                        self._push_locked()

                def _push_locked(self):
                    self.depth += 1
            """,
        )
        assert violations == []

    def test_race_ok_waiver_suppresses_the_site(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def racy(self):
                    self.value += 1  # race-ok: approximate stat
            """,
        )
        assert violations == []

    def test_threading_local_fields_are_exempt(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class PerThread:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._local = threading.local()

                def touch(self):
                    self._local.counters = []
            """,
        )
        assert violations == []

    def test_class_without_locks_is_out_of_scope(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            class Plain:
                def __init__(self):
                    self.value = 0

                def bump(self):
                    self.value += 1
            """,
        )
        assert violations == []

    def test_read_only_after_init_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Config:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.limit = 8

                def read(self):
                    return self.limit
            """,
        )
        assert violations == []

    def test_chained_field_write_counts_against_the_base_field(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.rows = {}

                def put(self, key, value):
                    with self._lock:
                        self.rows[key] = value

                def racy_put(self, key, value):
                    self.rows[key] = value
            """,
        )
        assert _rules(violations) == ["VAM007"]
        assert "Table.rows" in violations[0].message

    def test_out_of_scope_path_is_ignored(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def racy(self):
                    self.value += 1
            """,
            name="misc/module.py",
        )
        assert violations == []


class TestLockOrder:
    def test_opposite_nesting_orders_are_a_cycle(self, tmp_path):
        violations = _lint_tree(
            tmp_path,
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        assert _rules(violations) == ["VAM008"]
        assert "cycle" in violations[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        violations = _lint_tree(
            tmp_path,
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
        )
        assert violations == []

    def test_interprocedural_cycle_through_a_method_call(self, tmp_path):
        violations = _lint_tree(
            tmp_path,
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        self._take_b()

                def _take_b(self):
                    with self._b:
                        pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        assert _rules(violations) == ["VAM008"]

    def test_cross_class_cycle_via_constructor_typed_field(self, tmp_path):
        violations = _lint_tree(
            tmp_path,
            """
            import threading

            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass

            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.inner = Inner()

                def forward(self):
                    with self._lock:
                        self.inner.poke()
            """,
            name="serving/one.py",
        ) + _lint_tree(
            tmp_path,
            """
            import threading

            class Backward:
                def __init__(self):
                    self._lock = threading.Lock()

                def run(self, outer):
                    pass
            """,
            name="serving/two.py",
        )
        # One direction only: an edge, not a cycle.
        assert violations == []

    def test_reentrant_reacquire_is_not_an_ordering_cycle(self, tmp_path):
        violations = _lint_tree(
            tmp_path,
            """
            import threading

            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
        )
        assert violations == []


class TestBlockingUnderLock:
    def test_future_result_under_lock_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._lock = threading.Lock()

                def collect(self, future):
                    with self._lock:
                        return future.result()
            """,
        )
        assert _rules(violations) == ["VAM009"]
        assert "Future.result" in violations[0].message

    def test_sleep_under_lock_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading
            import time

            class Pauser:
                def __init__(self):
                    self._lock = threading.Lock()

                def pause(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
        )
        assert _rules(violations) == ["VAM009"]

    def test_queue_get_is_receiver_gated(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Mixed:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = object()
                    self.table = {}

                def blocked(self):
                    with self._lock:
                        return self._queue.get()

                def fine(self, key):
                    with self._lock:
                        return self.table.get(key)
            """,
        )
        assert _rules(violations) == ["VAM009"]
        assert "queue wait" in violations[0].message

    def test_thread_join_is_receiver_gated(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Closer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.worker_thread = None

                def blocked(self):
                    with self._lock:
                        self.worker_thread.join()

                def fine(self, parts):
                    with self._lock:
                        return ", ".join(parts)
            """,
        )
        assert _rules(violations) == ["VAM009"]
        assert "thread join" in violations[0].message

    def test_publish_under_lock_is_flagged(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Updater:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.manager = None

                def apply(self, mutate):
                    with self._lock:
                        return self.manager.publish(mutate)
            """,
        )
        assert _rules(violations) == ["VAM009"]
        assert "publish" in violations[0].message

    def test_blocking_call_outside_the_lock_is_clean(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.done = 0

                def collect(self, future):
                    value = future.result()
                    with self._lock:
                        self.done += 1
                    return value
            """,
        )
        assert violations == []

    def test_module_level_function_with_local_lock_is_checked(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading
            import time

            def run():
                guard = threading.Lock()
                with guard:
                    time.sleep(1.0)
            """,
        )
        assert _rules(violations) == ["VAM009"]

    def test_waiver_suppresses_blocking_site(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            """
            import threading
            import time

            class Pauser:
                def __init__(self):
                    self._lock = threading.Lock()

                def pause(self):
                    with self._lock:
                        time.sleep(0.1)  # race-ok: test-only throttle
            """,
        )
        assert violations == []


class TestShippedTreeAndFlags:
    def test_shipped_tree_is_clean_for_concurrency_rules(self):
        violations = [
            violation
            for violation in lint_paths([str(SRC_REPRO)])
            if violation.rule in ("VAM007", "VAM008", "VAM009")
        ]
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_shipped_lock_order_has_the_documented_edges(self):
        triples = []
        for path in sorted((SRC_REPRO / "serving").glob("*.py")):
            source = path.read_text(encoding="utf-8")
            triples.append((str(path), ast.parse(source), source))
        edges = lock_order_edges(triples)
        assert edges.get("SnapshotManager._write_lock") == ["SnapshotManager._lock"]

    def test_require_flag_accepts_registered_rules(self, capsys):
        code = main(["--require", "VAM007,VAM008,VAM009", str(SRC_REPRO)])
        assert code == 0

    def test_require_flag_rejects_unknown_rules(self, capsys):
        code = main(["--require", "VAM042", str(SRC_REPRO)])
        assert code == 2
        assert "unknown rule id" in capsys.readouterr().err


# -- mutation tests: delete a real lock, the static rule must object -----------


class _StripWith(ast.NodeTransformer):
    """Remove ``with self.<attr>:`` items, splicing the body in place."""

    def __init__(self, attr: str):
        self.attr = attr
        self.stripped = 0

    def visit_With(self, node: ast.With):
        self.generic_visit(node)
        kept = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr == self.attr
            ):
                self.stripped += 1
                continue
            kept.append(item)
        if kept:
            node.items = kept
            return node
        return node.body


def _mutate_module(source_path: Path, out_dir: Path, lock_attr: str) -> int:
    """Write ``source_path`` with every ``with self.<lock_attr>:`` removed."""
    tree = ast.parse(source_path.read_text(encoding="utf-8"))
    stripper = _StripWith(lock_attr)
    tree = ast.fix_missing_locations(stripper.visit(tree))
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / source_path.name).write_text(ast.unparse(tree), encoding="utf-8")
    return stripper.stripped


class TestStaticMutantKills:
    def test_deleting_the_plan_cache_lock_is_caught(self, tmp_path):
        source = SRC_REPRO / "engine" / "engine.py"
        stripped = _mutate_module(source, tmp_path / "engine", "_plan_lock")
        assert stripped > 0, "mutation did not apply — lock attr renamed?"
        violations = lint_paths([str(tmp_path / "engine")])
        flagged = [v for v in violations if v.rule == "VAM007"]
        assert flagged, "VAM007 failed to kill the plan-cache lock mutant"
        assert any("_plan_cache" in v.message or "plan_cache" in v.message
                   for v in flagged)

    def test_deleting_the_snapshot_refcount_lock_is_caught(self, tmp_path):
        source = SRC_REPRO / "serving" / "snapshot.py"
        stripped = _mutate_module(source, tmp_path / "serving", "_lock")
        assert stripped > 0, "mutation did not apply — lock attr renamed?"
        violations = lint_paths([str(tmp_path / "serving")])
        flagged = [v for v in violations if v.rule == "VAM007"]
        assert flagged, "VAM007 failed to kill the snapshot lock mutant"
        assert any("SnapshotManager" in v.message for v in flagged)

    def test_the_pristine_copies_are_clean(self, tmp_path):
        for relative in ("engine/engine.py", "serving/snapshot.py"):
            source = SRC_REPRO / relative
            target = tmp_path / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source.read_text(encoding="utf-8"), encoding="utf-8")
        violations = [
            v for v in lint_paths([str(tmp_path)]) if v.rule.startswith("VAM00")
            and v.rule in ("VAM007", "VAM008", "VAM009")
        ]
        assert violations == [], "\n".join(v.format() for v in violations)
