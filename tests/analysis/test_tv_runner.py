"""verify-rules end to end: obligations, mutation kill, fixture replay."""

from __future__ import annotations

import glob
import os

import pytest

from repro.analysis.tv.mutations import (
    MUTANT_QUERIES,
    MUTANT_RULES,
    BrokenDuplicateEliminationRule,
    BrokenPushdownRule,
)
from repro.analysis.tv.runner import (
    build_obligations,
    check_document,
    corpus,
    shrink_failure,
    verify_rules,
)
from repro.analysis.tv.shrinker import Reproducer
from repro.optimizer.rules import DEFAULT_RULES

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Fixture rule name -> the mutant that regenerates the bug.
MUTANTS_BY_NAME = {rule.name: rule for rule in MUTANT_RULES}


class TestObligations:
    def test_every_default_rule_has_a_matching_site(self):
        obligations = build_obligations()
        covered = {obligation.rule for obligation in obligations}
        assert covered == {rule.name for rule in DEFAULT_RULES}

    def test_before_plans_are_untouched_by_the_rewrite(self):
        for obligation in build_obligations():
            assert obligation.before.explain(costs=False) != ""
            assert (
                obligation.before.explain(costs=False)
                != obligation.after.explain(costs=False)
            )

    def test_corpus_tiers(self):
        documents = corpus(quick=True, seed=7)
        assert len(documents) > 400
        assert len(set(documents)) == len(documents)


class TestCorrectRulesDischarge:
    def test_obligations_hold_on_a_document_sample(self):
        obligations = build_obligations()
        for text in corpus(quick=True)[:40]:
            assert check_document(text, obligations) == []

    def test_full_quick_run_is_clean(self):
        report = verify_rules(quick=True, soundness=False)
        assert report.ok, report.describe()
        assert report.obligations >= 15
        assert report.documents > 400


class TestMutationKill:
    """The harness must catch known-broken rules and shrink the witness."""

    @pytest.mark.parametrize("rule", MUTANT_RULES, ids=lambda r: r.name)
    def test_mutant_is_caught_and_shrunk_small(self, rule):
        report = verify_rules(
            quick=True,
            rules=(rule,),
            extra_queries=MUTANT_QUERIES[rule.name],
            soundness=False,
        )
        assert not report.ok
        assert report.failures
        reproducer = report.failures[0].reproducer
        assert reproducer is not None
        assert reproducer.node_count <= 5
        assert reproducer.discrepancies

    def test_broken_pushdown_repro_is_positional(self):
        report = verify_rules(
            quick=True,
            rules=(BrokenPushdownRule(),),
            soundness=False,
        )
        failure = report.failures[0]
        assert "[1]" in failure.expression


class TestFixtureReplay:
    """Shrunk reproducers are replayed forever against current code."""

    def _fixtures(self):
        paths = sorted(glob.glob(os.path.join(FIXTURES, "*.json")))
        assert paths, "fixture corpus is missing"
        return [Reproducer.load(path) for path in paths]

    def test_fixture_corpus_exists_for_each_mutant(self):
        names = {fixture.rule for fixture in self._fixtures()}
        assert names == set(MUTANTS_BY_NAME)

    def test_mutants_still_fail_on_their_fixtures(self):
        for fixture in self._fixtures():
            rule = MUTANTS_BY_NAME[fixture.rule]
            obligations = build_obligations(
                rules=(rule,), extra_queries=(fixture.expression,)
            )
            relevant = [
                o for o in obligations if o.expression == fixture.expression
            ]
            assert relevant, fixture.expression
            failures = check_document(fixture.document, relevant)
            assert failures, (
                f"fixture {fixture.rule} no longer reproduces — if the "
                "mutant's bug class is now impossible, regenerate fixtures"
            )

    def test_real_rules_are_clean_on_fixture_documents(self):
        obligations = build_obligations(
            extra_queries=tuple(f.expression for f in self._fixtures())
        )
        for fixture in self._fixtures():
            assert check_document(fixture.document, obligations) == []

    def test_shrink_failure_reaches_fixture_size(self):
        for fixture in self._fixtures():
            rule = MUTANTS_BY_NAME[fixture.rule]
            obligations = [
                o
                for o in build_obligations(
                    rules=(rule,), extra_queries=(fixture.expression,)
                )
                if o.expression == fixture.expression
            ]
            failures = check_document(fixture.document, obligations)
            reproducer = shrink_failure(failures[0], obligations[0])
            assert reproducer.node_count <= fixture.node_count
