"""Differential oracle: DOM-key bridge, mode cross-checks, verifier hookup."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.model import Axis
from repro.xmlkit.dom import build_dom
from repro.algebra.builder import build_default_plan
from repro.algebra.plan import StepNode
from repro.analysis.plan_verifier import PlanVerifier
from repro.analysis.tv.oracle import (
    DifferentialOracle,
    compare_sequences,
    dom_key_map,
    dom_reference,
    evaluate_modes,
)
from repro.errors import PlanInvariantError
from repro.optimizer.cleanup import cleanup_plan

DOC = """<site><people>
<person id="p0"><name>v</name><address><city>w</city></address></person>
<person id="p1"><name>w</name></person>
</people></site>"""


@pytest.fixture
def store():
    return load_xml(DOC, name="tv-oracle")


@pytest.fixture
def document():
    return build_dom(DOC)


class TestDomKeyBridge:
    def test_every_dom_node_gets_the_loader_key(self, store, document):
        mapping = dom_key_map(document)
        # Walk the DOM: each mapped key must resolve in the store to a
        # record with the same element/attribute name.
        stack = [document.document_node]
        seen = 0
        while stack:
            node = stack.pop()
            record = store.fetch(mapping[id(node)])
            assert record is not None
            if getattr(node, "name", ""):
                assert record.name == node.name
            seen += 1
            stack.extend(node.children)
            stack.extend(node.attributes)
        assert seen == len(mapping)

    def test_reference_matches_engine_result(self, store, document):
        mapping = dom_key_map(document)
        reference = dom_reference("//person/name", document, mapping)
        plan = build_default_plan("//person/name")
        cleanup_plan(plan)
        results = evaluate_modes(plan, store)
        assert compare_sequences("x", results["tuple"], reference) is None


class TestModeCrossCheck:
    @pytest.mark.parametrize(
        "expression",
        ["//person", "//person/name", "//people/person[1]",
         "//name | //city", "//city/ancestor::person"],
    )
    def test_identity_obligation_discharges(self, store, document, expression):
        oracle = DifferentialOracle(store, document)
        plan = build_default_plan(expression)
        cleanup_plan(plan)
        assert oracle.discrepancies(plan, plan.clone(), "identity") == []

    def test_injected_divergence_is_reported(self, store, document):
        oracle = DifferentialOracle(store, document)
        before = build_default_plan("//person/name")
        cleanup_plan(before)
        after = before.clone()
        # Corrupt the rewrite: the name step stays on its context node,
        # so the "rewritten" plan returns persons instead of names.
        step = after.root.context_child
        assert isinstance(step, StepNode) and step.axis is Axis.CHILD
        step.axis = Axis.SELF
        problems = oracle.discrepancies(before, after, "corrupted")
        assert problems  # caught without any DOM involvement needed
        assert any("pre vs post" in problem for problem in problems)

    def test_storeless_dom_is_optional(self, store):
        oracle = DifferentialOracle(store)  # no DOM: plans-only mode
        plan = build_default_plan("//person")
        cleanup_plan(plan)
        assert oracle.discrepancies(plan, plan.clone()) == []


class TestVerifierIntegration:
    def test_check_rewrite_rejects_on_oracle_discrepancy(self, store, document):
        verifier = PlanVerifier(oracle=DifferentialOracle(store, document))
        before = build_default_plan("//person/name")
        cleanup_plan(before)
        after = before.clone()
        step = after.root.context_child
        step.axis = Axis.SELF
        with pytest.raises(PlanInvariantError):
            verifier.check_rewrite(before, after, "corrupted")

    def test_check_rewrite_passes_equivalent_plans(self, store, document):
        verifier = PlanVerifier(oracle=DifferentialOracle(store, document))
        before = build_default_plan("//person/name")
        cleanup_plan(before)
        verifier.check_rewrite(before, before.clone(), "identity")
