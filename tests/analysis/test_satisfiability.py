"""Satisfiability analysis: schema soundness, pruning, zero-I/O answers."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.mass.records import NodeKind
from repro.bench.hotpath import PAPER_QUERIES
from repro.engine.engine import VamanaEngine
from repro.xmark import vocabulary
from repro.xpath.parser import parse_xpath
from repro.analysis.satisfiability import (
    SatisfiabilityAnalyzer,
    analyze,
    names_only_schema,
    xmark_schema,
)

#: Queries the XMark grammar proves empty, by failure family.
UNSAT_QUERIES = [
    "//nosuchtag",  # unknown element name
    "//person/@nosuchattr",  # unknown attribute name
    "//person/person",  # impossible parent/child pair
    "/site/category",  # category only lives under categories
    "//regions/person",  # people are not region children
    "//item/@open_auction",  # attribute on the wrong element
    "//watch/descendant::price",  # watch is a leaf element
    "/descendant::edge/ancestor::people",  # edges live under catgraph
    "//attribute::comment()",  # attribute axis can't yield comments
    "//person[address/planet]",  # predicate path can never match
    "//person[false()]",  # constant-false predicate
    "//price[3 < 2]",  # constant-false comparison
    "//person[0]",  # position 0 never exists
    "//city | //nosuchtag/other",  # union with one dead branch is dead only if both are
]


def _unsat(query: str) -> bool:
    return not analyze(parse_xpath(query), xmark_schema()).satisfiable


class TestXmarkSchemaVerdicts:
    @pytest.mark.parametrize("query", UNSAT_QUERIES[:-1])
    def test_statically_empty_queries_are_flagged(self, query):
        assert _unsat(query), query

    def test_union_is_dead_only_when_every_branch_is(self):
        assert not _unsat("//city | //nosuchtag/other")
        assert _unsat("//nosuchtag | //person/person")

    @pytest.mark.parametrize("query", list(PAPER_QUERIES.values()))
    def test_paper_benchmark_queries_are_never_misclassified(self, query):
        report = analyze(parse_xpath(query), xmark_schema())
        assert report.satisfiable, f"{query}: {report.reasons}"

    def test_reasons_name_the_failing_step(self):
        report = analyze(parse_xpath("//nosuchtag"), xmark_schema())
        assert not report.satisfiable
        assert any("nosuchtag" in reason for reason in report.reasons)

    def test_comment_and_pi_kinds_are_never_pruned(self):
        for query in ("//comment()", "//processing-instruction()",
                      "/site/comment()", "//person//text()"):
            report = analyze(parse_xpath(query), xmark_schema())
            assert report.satisfiable, query

    def test_not_predicates_are_never_pruned(self):
        assert not _unsat("//person[not(address)]")


class TestNamesOnlyFallback:
    def test_unknown_names_still_prune(self):
        schema = names_only_schema({"a", "b"}, {"id"})
        assert not analyze(parse_xpath("//c"), schema).satisfiable
        assert not analyze(parse_xpath("//a/@missing"), schema).satisfiable

    def test_structure_is_never_assumed(self):
        # A names-only schema knows nothing about nesting: any chain of
        # known names must stay satisfiable.
        schema = names_only_schema({"a", "b"}, {"id"})
        for query in ("//a/a", "//b/a/b", "//a/@id", "//a/ancestor::b"):
            assert analyze(parse_xpath(query), schema).satisfiable, query


class TestSchemaMatchesGenerator:
    """The vocabulary schema graph must stay in lockstep with the generator."""

    def test_every_generated_edge_is_in_the_schema(self, xmark_dom):
        children = vocabulary.SCHEMA_CHILDREN
        attributes = vocabulary.SCHEMA_ATTRIBUTES
        for node in xmark_dom.all_nodes():
            if node.kind is not NodeKind.ELEMENT:
                continue
            assert node.name in children, f"element <{node.name}> not in schema"
            for child in node.child_elements():
                assert child.name in children[node.name], (
                    f"<{node.name}> -> <{child.name}> missing from SCHEMA_CHILDREN"
                )
            for attribute in node.attributes:
                assert attribute.name in attributes.get(node.name, ()), (
                    f"@{attribute.name} on <{node.name}> missing from "
                    "SCHEMA_ATTRIBUTES"
                )

    def test_root_element_matches(self, xmark_dom):
        assert xmark_dom.document_element.name == vocabulary.SCHEMA_ROOT


class TestEngineShortCircuit:
    def test_statically_empty_query_returns_empty(self, xmark_store):
        engine = VamanaEngine(xmark_store)
        result = engine.evaluate("//nosuchtag")
        assert len(result) == 0
        assert result.metrics.counters.get("static_empty") == 1

    def test_short_circuit_reads_no_pages(self, xmark_store):
        engine = VamanaEngine(xmark_store)
        # Warm the schema cache (resolving it costs a bounded number of
        # index seeks); the verdict itself must then be I/O-free.
        engine.schema()
        before = xmark_store.io_snapshot()
        result = engine.evaluate("//person/person/address")
        after = xmark_store.io_snapshot()
        assert len(result) == 0
        assert result.metrics.counters.get("static_empty") == 1
        assert after["pages_read"] == before["pages_read"]
        assert after["logical_reads"] == before["logical_reads"]
        assert after["record_fetches"] == before["record_fetches"]

    @pytest.mark.parametrize("query", list(PAPER_QUERIES.values()))
    def test_paper_queries_unaffected_by_static_check(self, xmark_store, query):
        checked = VamanaEngine(xmark_store)
        unchecked = VamanaEngine(xmark_store, static_check=False)
        checked_result = checked.evaluate(query)
        assert checked.satisfiability(query).satisfiable
        assert checked_result.metrics.counters.get("static_empty") is None
        assert checked_result.key_set() == unchecked.evaluate(query).key_set()

    def test_opt_out_runs_the_query_normally(self, xmark_store):
        engine = VamanaEngine(xmark_store, static_check=False)
        result = engine.evaluate("//nosuchtag")
        assert len(result) == 0
        assert result.metrics.counters.get("static_empty") is None

    def test_explicit_context_disables_the_short_circuit(self, xmark_store):
        # Relative paths mean something different from a non-document
        # context; the pre-pass must not misjudge them.
        engine = VamanaEngine(xmark_store)
        people = engine.evaluate("//people")
        assert len(people) == 1
        result = engine.evaluate("person/name", context=people.keys[0])
        assert len(result) > 0

    def test_small_document_keeps_comments_and_pis(self, small_store):
        # SMALL_DOC is XMark-shaped (site root, vocabulary names) but
        # contains a comment and a processing instruction: the exhaustive
        # schema must not prune them away.
        engine = VamanaEngine(small_store)
        assert len(engine.evaluate("//comment()")) == 1
        assert len(engine.evaluate("//processing-instruction()")) == 1
        assert len(engine.evaluate("/site/people/person/name")) == 3

    def test_non_xmark_store_falls_back_to_names_only(self):
        store = load_xml("<library><shelf><book/><book/></shelf></library>")
        engine = VamanaEngine(store)
        assert not engine.schema().exhaustive
        assert len(engine.evaluate("//nosuchtag")) == 0
        assert engine.evaluate("//nosuchtag").metrics.counters.get("static_empty") == 1
        # Structurally impossible but name-known: must execute, not prune.
        result = engine.evaluate("//book/shelf")
        assert len(result) == 0
        assert result.metrics.counters.get("static_empty") is None

    def test_schema_cache_tracks_store_epoch(self):
        store = load_xml("<library><shelf><book/></shelf></library>")
        engine = VamanaEngine(store)
        assert not engine.satisfiability("//pamphlet").satisfiable
        shelf = next(iter(engine.evaluate("//shelf")))
        store.insert_element(shelf, "pamphlet")
        assert engine.satisfiability("//pamphlet").satisfiable
        assert len(engine.evaluate("//pamphlet")) == 1


class TestAnalyzerInternals:
    def test_descendant_closure_is_memoized_and_complete(self):
        analyzer = SatisfiabilityAnalyzer(xmark_schema())
        reachable = analyzer._descendant_closure("site")
        assert "province" in reachable and "price" in reachable
        assert analyzer._descendant_closure("site") is reachable

    def test_value_expressions_are_trivially_satisfiable(self):
        analyzer = SatisfiabilityAnalyzer(xmark_schema())
        assert analyzer.analyze(parse_xpath("count(//person)")).satisfiable
        assert analyzer.analyze(parse_xpath("1 + 1")).satisfiable
