"""The Eraser-style dynamic race detector: state machine, locks, tracing."""

from __future__ import annotations

import threading

from repro.analysis.concurrency.instrument import (
    EXCLUSIVE,
    SHARED,
    SHARED_MODIFIED,
    InstrumentedLock,
    InstrumentedRLock,
    NullLock,
    RaceDetector,
)


def _record(detector, key, thread, held, write, where="test.py:1"):
    detector._record(
        key=key,
        cls_name="Box",
        thread=thread,
        held=frozenset(held),
        is_write=write,
        location=where,
    )


class TestStateMachine:
    def test_single_thread_writes_never_report(self):
        detector = RaceDetector()
        for _ in range(5):
            _record(detector, ("obj", "value"), thread=1, held=(), write=True)
        assert detector.race_count() == 0
        assert detector._shadows[("obj", "value")].state == EXCLUSIVE

    def test_second_thread_read_moves_to_shared_without_report(self):
        detector = RaceDetector()
        _record(detector, ("obj", "value"), thread=1, held=(), write=True)
        _record(detector, ("obj", "value"), thread=2, held=(), write=False)
        assert detector._shadows[("obj", "value")].state == SHARED
        # Read-only sharing is benign even with an empty lockset.
        assert detector.race_count() == 0

    def test_second_thread_unlocked_write_reports(self):
        detector = RaceDetector()
        _record(detector, ("obj", "value"), thread=1, held=(), write=True)
        _record(detector, ("obj", "value"), thread=2, held=(), write=True)
        assert detector.race_count() == 1
        report = detector.reports[0]
        assert report.cls == "Box"
        assert report.field == "value"
        assert report.state == SHARED_MODIFIED
        assert "Box.value" in report.render()

    def test_common_lock_keeps_the_lockset_alive(self):
        detector = RaceDetector()
        _record(detector, ("obj", "value"), thread=1, held=(), write=True)
        _record(detector, ("obj", "value"), thread=2, held=(10,), write=True)
        _record(detector, ("obj", "value"), thread=1, held=(10, 20), write=True)
        assert detector.race_count() == 0
        assert detector._shadows[("obj", "value")].lockset == frozenset({10})

    def test_lockset_draining_after_shared_write_reports(self):
        detector = RaceDetector()
        _record(detector, ("obj", "value"), thread=1, held=(), write=True)
        _record(detector, ("obj", "value"), thread=2, held=(10,), write=True)
        assert detector.race_count() == 0
        _record(detector, ("obj", "value"), thread=1, held=(20,), write=True)
        assert detector.race_count() == 1

    def test_shared_then_write_upgrades_and_reports(self):
        detector = RaceDetector()
        _record(detector, ("obj", "value"), thread=1, held=(), write=False)
        _record(detector, ("obj", "value"), thread=2, held=(), write=False)
        assert detector._shadows[("obj", "value")].state == SHARED
        _record(detector, ("obj", "value"), thread=2, held=(), write=True)
        assert detector._shadows[("obj", "value")].state == SHARED_MODIFIED
        assert detector.race_count() == 1

    def test_each_field_reports_at_most_once(self):
        detector = RaceDetector()
        _record(detector, ("obj", "value"), thread=1, held=(), write=True)
        for _ in range(4):
            _record(detector, ("obj", "value"), thread=2, held=(), write=True)
        assert detector.race_count() == 1

    def test_distinct_fields_are_tracked_separately(self):
        detector = RaceDetector()
        _record(detector, ("obj", "a"), thread=1, held=(), write=True)
        _record(detector, ("obj", "b"), thread=1, held=(), write=True)
        _record(detector, ("obj", "a"), thread=2, held=(), write=True)
        assert detector.race_count() == 1
        assert detector.reports[0].field == "a"


class TestInstrumentedLocks:
    def test_acquire_release_updates_the_held_set(self):
        detector = RaceDetector()
        lock = InstrumentedLock(detector)
        assert detector.held_ids() == frozenset()
        assert lock.acquire()
        assert detector.held_ids() == frozenset({id(lock)})
        lock.release()
        assert detector.held_ids() == frozenset()

    def test_context_manager_protocol(self):
        detector = RaceDetector()
        lock = InstrumentedLock(detector)
        with lock:
            assert id(lock) in detector.held_ids()
            assert lock.locked()
        assert detector.held_ids() == frozenset()
        assert not lock.locked()

    def test_rlock_reentrancy_counts_depth(self):
        detector = RaceDetector()
        lock = InstrumentedRLock(detector)
        with lock:
            with lock:
                assert id(lock) in detector.held_ids()
            # Inner exit must not drop the outer hold.
            assert id(lock) in detector.held_ids()
        assert detector.held_ids() == frozenset()

    def test_held_sets_are_per_thread(self):
        detector = RaceDetector()
        lock = InstrumentedLock(detector)
        observed = []

        def other():
            observed.append(detector.held_ids())

        with lock:
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert observed == [frozenset()]

    def test_null_lock_is_lock_shaped_but_never_locks(self):
        null = NullLock()
        assert null.acquire()
        null.release()
        with null:
            assert not null.locked()


class _Box:
    def __init__(self):
        self.value = 0
        self.other = 0


class _SlottedBox:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0


class TestTraceType:
    def test_watched_field_accesses_reach_the_detector(self):
        detector = RaceDetector()
        traced = detector.trace_type(_Box, ("value",))
        box = traced()
        box.value += 1
        assert (id(box), "value") in detector._shadows

    def test_unwatched_fields_are_not_shadowed(self):
        detector = RaceDetector()
        traced = detector.trace_type(_Box, ("value",))
        box = traced()
        box.other += 1
        assert (id(box), "other") not in detector._shadows

    def test_traced_types_are_cached(self):
        detector = RaceDetector()
        assert detector.trace_type(_Box, ("value",)) is detector.trace_type(
            _Box, ("value",)
        )

    def test_slots_classes_can_be_traced(self):
        detector = RaceDetector()
        traced = detector.trace_type(_SlottedBox, ("value",))
        box = traced()
        box.value = 3
        assert box.value == 3
        assert (id(box), "value") in detector._shadows


class TestRealThreads:
    def test_unsynchronized_cross_thread_writes_are_reported(self):
        detector = RaceDetector()
        traced = detector.trace_type(_Box, ("value",))
        box = traced()
        box.value = 1  # owner thread initializes

        def worker():
            box.value += 1

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert detector.race_count() == 1
        assert detector.reports[0].field == "value"

    def test_lock_protected_cross_thread_writes_are_clean(self):
        detector = RaceDetector()
        traced = detector.trace_type(_Box, ("value",))
        lock = InstrumentedLock(detector)
        box = traced()
        box.value = 1

        def worker():
            with lock:
                box.value += 1

        for _ in range(2):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        with lock:
            box.value += 1
        assert detector.race_count() == 0

    def test_null_lock_mutant_is_killed(self):
        """Replacing the real lock with NullLock must surface the race."""
        detector = RaceDetector()
        traced = detector.trace_type(_Box, ("value",))
        lock = NullLock()  # the mutant: lock-shaped, protects nothing
        box = traced()
        box.value = 1

        def worker():
            with lock:
                box.value += 1

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert detector.race_count() == 1


class TestInstrumentServing:
    def test_modules_are_patched_and_restored(self):
        import repro.serving.server as server_mod
        import repro.serving.snapshot as snapshot_mod

        original_threading = snapshot_mod.threading
        original_manager = server_mod.SnapshotManager
        detector = RaceDetector()
        with detector.instrument_serving():
            assert snapshot_mod.threading is not original_threading
            assert snapshot_mod.threading.Lock().__class__ is InstrumentedLock
            assert server_mod.SnapshotManager is not original_manager
            assert issubclass(server_mod.SnapshotManager, original_manager)
        assert snapshot_mod.threading is original_threading
        assert server_mod.SnapshotManager is original_manager

    def test_objects_built_inside_keep_working_outside(self):
        from repro.mass.loader import load_xml
        from repro.serving.snapshot import SnapshotManager

        detector = RaceDetector()
        with detector.instrument_serving():
            import repro.serving.server as server_mod

            manager = server_mod.SnapshotManager(
                load_xml("<a><b/></a>", name="t")
            )
            assert isinstance(manager, SnapshotManager)
        with manager.acquire() as snapshot:
            assert snapshot.epoch == manager.current_epoch
        assert manager.stats()["releases"] == 1
