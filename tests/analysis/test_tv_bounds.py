"""Cardinality intervals: soundness vs execution, estimator lint, block sizing."""

from __future__ import annotations

import pytest

from repro.mass.loader import load_xml
from repro.algebra.builder import build_default_plan
from repro.algebra.execution import execute_plan
from repro.algebra.plan import PlanNode
from repro.analysis.satisfiability import xmark_schema
from repro.analysis.tv.bounds import (
    CardinalityInterval,
    check_estimator_soundness,
    derive_intervals,
    soundness_violations,
)
from repro.cost.estimator import CostEstimator
from repro.optimizer.cleanup import cleanup_plan
from repro.optimizer.optimizer import Optimizer

PAPER_QUERIES = {
    "Q1": "//person/address",
    "Q2": "//watches/watch/ancestor::person",
    "Q3": "/descendant::name/parent::*/self::person/address",
    "Q4": "//itemref/following-sibling::price/parent::*",
    "Q5": "//province[text()='Vermont']/ancestor::person",
}


def _planned(expression):
    plan = build_default_plan(expression)
    cleanup_plan(plan)
    return plan


class TestIntervalSoundness:
    """The defining property: actual emissions always fall in the interval.

    The root's interval must contain the measured result size on the real
    store — for default plans, optimized plans, and every paper query.
    """

    @pytest.mark.parametrize("label", sorted(PAPER_QUERIES))
    def test_root_interval_contains_actual_result(self, xmark_store, label):
        plan = _planned(PAPER_QUERIES[label])
        intervals = derive_intervals(plan, xmark_store, xmark_schema())
        actual = len(list(execute_plan(plan, xmark_store)))
        assert intervals[plan.root.op_id].contains(actual)

    @pytest.mark.parametrize("label", sorted(PAPER_QUERIES))
    def test_optimized_plan_interval_contains_actual(self, xmark_store, label):
        optimized, _trace = Optimizer(xmark_store).optimize(
            build_default_plan(PAPER_QUERIES[label])
        )
        intervals = derive_intervals(optimized, xmark_store, xmark_schema())
        actual = len(list(execute_plan(optimized, xmark_store)))
        assert intervals[optimized.root.op_id].contains(actual)

    def test_exact_leaf_interval_is_a_point(self, xmark_store):
        plan = _planned("//person")
        intervals = derive_intervals(plan, xmark_store)
        leaf = plan.root.context_child
        count = len(list(execute_plan(plan, xmark_store)))
        assert intervals[leaf.op_id] == CardinalityInterval(count, count)


class TestEstimatorLint:
    @pytest.mark.parametrize("label", sorted(PAPER_QUERIES))
    def test_paper_queries_have_zero_violations(self, xmark_store, label):
        plan = _planned(PAPER_QUERIES[label])
        assert check_estimator_soundness(plan, xmark_store, xmark_schema()) == []

    @pytest.mark.parametrize("label", sorted(PAPER_QUERIES))
    def test_optimized_paper_queries_clean_too(self, xmark_store, label):
        optimized, _trace = Optimizer(xmark_store).optimize(
            build_default_plan(PAPER_QUERIES[label])
        )
        CostEstimator(xmark_store).estimate(optimized)
        intervals = derive_intervals(optimized, xmark_store, xmark_schema())
        assert soundness_violations(optimized, intervals) == []

    def test_broken_estimate_is_flagged(self, xmark_store):
        """A mutated estimator (phantom tuples on the root step) is caught."""
        plan = _planned("//person/address")
        CostEstimator(xmark_store).estimate(plan)
        intervals = derive_intervals(plan, xmark_store, xmark_schema())
        step = plan.root.context_child
        step.cost.tuples_out = intervals[step.op_id].hi + 1_000
        problems = soundness_violations(plan, intervals)
        assert len(problems) == 1 and "above the provable interval" in problems[0]

    def test_impossibly_cheap_estimate_is_flagged(self, xmark_store):
        plan = _planned("//person")
        CostEstimator(xmark_store).estimate(plan)
        intervals = derive_intervals(plan, xmark_store)
        leaf = plan.root.context_child
        assert intervals[leaf.op_id].lo > 0  # exact-leaf: a point interval
        leaf.cost.tuples_out = 0
        problems = soundness_violations(plan, intervals)
        assert any("below the provable interval" in p for p in problems)


class TestSchemaRefinement:
    def test_provably_empty_step_collapses_to_zero(self, xmark_store):
        # people never occurs under person in the XMark grammar.
        plan = _planned("//person/people")
        intervals = derive_intervals(plan, xmark_store, xmark_schema())
        step = plan.root.context_child
        assert intervals[step.op_id] == CardinalityInterval(0, 0)

    def test_without_schema_no_collapse(self, xmark_store):
        plan = _planned("//person/people")
        intervals = derive_intervals(plan, xmark_store)
        step = plan.root.context_child
        assert intervals[step.op_id].hi > 0


class TestSoundBlockSizing:
    def test_intervals_clamp_phantom_estimates(self, xmark_store):
        plan = _planned("//person/people")  # provably empty output
        estimator = CostEstimator(xmark_store)
        estimator.estimate(plan)
        unclamped = estimator.suggest_block_size(plan)
        intervals = derive_intervals(plan, xmark_store, xmark_schema())
        clamped = estimator.suggest_block_size(plan, intervals=intervals)
        assert clamped <= unclamped

    def test_clamping_never_inflates(self, xmark_store):
        for expression in PAPER_QUERIES.values():
            plan = _planned(expression)
            estimator = CostEstimator(xmark_store)
            estimator.estimate(plan)
            intervals = derive_intervals(plan, xmark_store, xmark_schema())
            assert estimator.suggest_block_size(
                plan, intervals=intervals
            ) <= estimator.suggest_block_size(plan)

    def test_every_operator_gets_an_interval(self, xmark_store):
        for expression in PAPER_QUERIES.values():
            plan = _planned(expression)
            intervals = derive_intervals(plan, xmark_store, xmark_schema())
            for node in plan.walk():
                if isinstance(node, PlanNode):
                    assert node.op_id in intervals
