"""Bounded document enumeration: exhaustive, deterministic, in-grammar."""

from __future__ import annotations

import xml.dom.minidom

from repro.xmark.vocabulary import SCHEMA_CHILDREN
from repro.analysis.tv.documents import (
    SLICE_CHILDREN,
    DocumentBounds,
    enumerate_documents,
    random_documents,
)
from repro.analysis.tv.shrinker import count_nodes


class TestEnumeration:
    def test_deterministic_and_duplicate_free(self):
        first = list(enumerate_documents(DocumentBounds(max_nodes=6)))
        second = list(enumerate_documents(DocumentBounds(max_nodes=6)))
        assert first == second
        assert len(set(first)) == len(first)

    def test_every_document_is_well_formed_xml(self):
        for text in enumerate_documents(DocumentBounds(max_nodes=6)):
            xml.dom.minidom.parseString(text)

    def test_node_budget_is_respected(self):
        for text in enumerate_documents(DocumentBounds(max_nodes=6)):
            assert count_nodes(text) <= 6

    def test_budget_growth_is_strict(self):
        six = len(list(enumerate_documents(DocumentBounds(max_nodes=6))))
        seven = len(list(enumerate_documents(DocumentBounds(max_nodes=7))))
        assert six < seven

    def test_smallest_document_is_bare_root(self):
        first = next(iter(enumerate_documents(DocumentBounds(max_nodes=6))))
        assert first == "<site/>"

    def test_slice_is_inside_the_xmark_grammar(self):
        for parent, children in SLICE_CHILDREN.items():
            allowed = set(SCHEMA_CHILDREN.get(parent, ()))
            assert set(children) <= allowed, parent


class TestRandomTier:
    def test_seeded_and_reproducible(self):
        assert list(random_documents(8, seed=3)) == list(random_documents(8, seed=3))
        assert list(random_documents(8, seed=3)) != list(random_documents(8, seed=4))

    def test_well_formed(self):
        for text in random_documents(16, seed=11):
            xml.dom.minidom.parseString(text)
