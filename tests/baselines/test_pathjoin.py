"""Path-join baseline (eXist class): joins, fallback, profile gaps."""

from __future__ import annotations

import pytest

from repro.errors import DocumentTooLargeError, UnsupportedFeatureError
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.pathjoin import PathJoinEngine
from repro.baselines.profiles import JAXEN_PROFILE

DOC = (
    "<site><people>"
    "<person id='p0'><name>Ada</name><address><city>Monroe</city></address></person>"
    "<person id='p1'><name>Bob</name><watches><watch open_auction='o1'/></watches></person>"
    "</people>"
    "<closed_auction><itemref item='i1'/><price>9.99</price></closed_auction></site>"
)


@pytest.fixture
def engine():
    engine = PathJoinEngine()
    engine.load(DOC)
    return engine


@pytest.fixture
def reference():
    reference = DomTraversalEngine(JAXEN_PROFILE)
    reference.load(DOC)
    return reference


SUPPORTED_QUERIES = [
    "//person",
    "//person/name",
    "//people//city",
    "/site/people/person",
    "//city/ancestor::person",
    "//watch/parent::watches",
    "//name/ancestor-or-self::person",
    "//person/@id",
    "//person[@id='p1']",
    "//person[name='Ada']",
    "//person[address/city='Monroe']",
    "//person[watches]",
    "//person[2]",
    "//person[not(address)]",
    "//person/self::person",
    "//*",
    "//name/text()",
]


@pytest.mark.parametrize("query", SUPPORTED_QUERIES)
def test_matches_reference_engine(engine, reference, query):
    got = [node.order for node in engine.evaluate(query)]
    expected = [node.order for node in reference.evaluate(query)]
    assert got == expected


class TestProfileGaps:
    @pytest.mark.parametrize(
        "query",
        [
            "//itemref/following-sibling::price",
            "//price/preceding-sibling::itemref",
            "//person/following::price",
            "//price/preceding::person",
        ],
    )
    def test_ordered_axes_unsupported(self, engine, query):
        with pytest.raises(UnsupportedFeatureError):
            engine.evaluate(query)

    def test_size_cap(self):
        engine = PathJoinEngine()
        with pytest.raises(DocumentTooLargeError):
            engine.load("<a>" + "x" * (20 * 1024 * 1024) + "</a>")

    def test_non_path_rejected(self, engine):
        with pytest.raises(UnsupportedFeatureError):
            engine.evaluate("count(//person)")


class TestJoinMachinery:
    def test_name_joins_count_comparisons(self, engine):
        engine.reset_metrics()
        engine.evaluate("//person/name")
        assert engine.join_comparisons > 0
        assert engine.fallback_nodes == 0

    def test_value_predicate_triggers_fallback(self, engine):
        """The documented eXist weakness: value comparisons leave the index."""
        engine.reset_metrics()
        engine.evaluate("//person[name='Ada']")
        assert engine.fallback_nodes > 0

    def test_wildcard_step_uses_traversal(self, engine):
        engine.reset_metrics()
        engine.evaluate("//person/*")
        assert engine.fallback_nodes > 0

    def test_structural_query_stays_on_index(self, engine):
        """Pure name-to-name structural queries never touch the fallback."""
        engine.reset_metrics()
        engine.evaluate("//people/person/name")
        assert engine.fallback_nodes == 0

    def test_reset_metrics(self, engine):
        engine.evaluate("//person[name='Ada']")
        engine.reset_metrics()
        assert engine.join_comparisons == 0 and engine.fallback_nodes == 0

    def test_value_query_costs_more_than_structural(self, engine):
        """Why Q5 is ~2x on this engine: fallback traversal dwarfs joins."""
        engine.reset_metrics()
        engine.evaluate("//people/person/name")
        structural = engine.join_comparisons + engine.fallback_nodes
        engine.reset_metrics()
        engine.evaluate("//person[name='Ada']/name")
        with_value = engine.join_comparisons + engine.fallback_nodes
        assert with_value > structural
