"""DOM-traversal baseline: correctness, profiles, work accounting."""

from __future__ import annotations

import pytest

from repro.errors import DocumentTooLargeError, ExecutionError, UnsupportedFeatureError
from repro.baselines.dom_engine import DomTraversalEngine
from repro.baselines.profiles import GALAX_PROFILE, JAXEN_PROFILE, EngineProfile
from repro.model import Axis

DOC = (
    "<site><person id='p0'><name>Ada</name><address><city>Monroe</city></address></person>"
    "<person id='p1'><name>Bob</name></person>"
    "<closed_auction><itemref item='i1'/><price>9.99</price></closed_auction></site>"
)


@pytest.fixture
def jaxen():
    engine = DomTraversalEngine(JAXEN_PROFILE)
    engine.load(DOC)
    return engine


class TestEvaluation:
    def test_simple_path(self, jaxen):
        assert [node.name for node in jaxen.evaluate("//person/name")] == ["name", "name"]

    def test_document_order_output(self, jaxen):
        orders = [node.order for node in jaxen.evaluate("//*")]
        assert orders == sorted(orders)

    def test_duplicates_eliminated(self, jaxen):
        persons = jaxen.evaluate("//name/ancestor::person/name/parent::person")
        assert len(persons) == 2

    def test_predicates(self, jaxen):
        assert len(jaxen.evaluate("//person[@id='p0']")) == 1
        assert len(jaxen.evaluate("//person[name='Ada']")) == 1
        assert len(jaxen.evaluate("//person[address]")) == 1
        assert len(jaxen.evaluate("//person[2]")) == 1
        assert len(jaxen.evaluate("//closed_auction[price > 5]")) == 1

    def test_sibling_axes(self, jaxen):
        prices = jaxen.evaluate("//itemref/following-sibling::price")
        assert [node.name for node in prices] == ["price"]

    def test_attribute_axis(self, jaxen):
        assert len(jaxen.evaluate("//person/@id")) == 2

    def test_union(self, jaxen):
        assert len(jaxen.evaluate("//name | //city")) == 3

    def test_value_expression(self, jaxen):
        assert jaxen.evaluate_value("count(//person)") == 2.0
        assert jaxen.evaluate_value("string(//person/name)") == "Ada"

    def test_non_nodeset_evaluate_rejected(self, jaxen):
        with pytest.raises(ExecutionError):
            jaxen.evaluate("1 + 2")

    def test_no_document_loaded(self):
        engine = DomTraversalEngine(JAXEN_PROFILE)
        with pytest.raises(ExecutionError):
            engine.evaluate("//a")


class TestProfiles:
    def test_galax_rejects_sibling_axes(self):
        engine = DomTraversalEngine(GALAX_PROFILE)
        engine.load(DOC)
        with pytest.raises(UnsupportedFeatureError):
            engine.evaluate("//itemref/following-sibling::price")

    def test_jaxen_size_cap(self):
        engine = DomTraversalEngine(JAXEN_PROFILE)
        with pytest.raises(DocumentTooLargeError):
            engine.load("<a>" + "x" * (10 * 1024 * 1024) + "</a>")

    def test_load_dom_size_check(self, small_dom):
        engine = DomTraversalEngine(JAXEN_PROFILE)
        with pytest.raises(DocumentTooLargeError):
            engine.load_dom(small_dom, size_bytes=11 * 1024 * 1024)

    def test_load_dom_skips_check_without_size(self, small_dom):
        engine = DomTraversalEngine(JAXEN_PROFILE)
        engine.load_dom(small_dom)
        assert engine.evaluate("//person")

    def test_unsupported_axis_in_predicate(self):
        profile = EngineProfile(
            name="strict", supported_axes=frozenset({Axis.CHILD, Axis.DESCENDANT,
                                                     Axis.DESCENDANT_OR_SELF, Axis.SELF})
        )
        engine = DomTraversalEngine(profile)
        engine.load(DOC)
        with pytest.raises(UnsupportedFeatureError):
            engine.evaluate("//person[parent::site]")


class TestWorkAccounting:
    def test_nodes_visited_grows_with_traversal(self, jaxen):
        jaxen.nodes_visited = 0
        jaxen.evaluate("//person")
        full_scan = jaxen.nodes_visited
        assert full_scan > 0
        jaxen.nodes_visited = 0
        jaxen.evaluate("/site")
        assert jaxen.nodes_visited < full_scan

    def test_no_index_everything_is_traversal(self, jaxen):
        """The defining property of this engine class: even a one-result
        value query walks the whole tree."""
        jaxen.nodes_visited = 0
        jaxen.evaluate("//person[name='Ada']")
        assert jaxen.nodes_visited >= jaxen.document.node_count - 5
