"""Engine capability profiles: the limitations Section VIII reports."""

from __future__ import annotations

from repro.model import Axis
from repro.baselines.profiles import (
    EXIST_PROFILE,
    GALAX_PROFILE,
    JAXEN_PROFILE,
    XINDICE_PROFILE,
    EngineProfile,
)

_MB = 1024 * 1024


class TestGalax:
    def test_missing_sibling_axes(self):
        assert not GALAX_PROFILE.supports_axis(Axis.FOLLOWING_SIBLING)
        assert not GALAX_PROFILE.supports_axis(Axis.PRECEDING_SIBLING)

    def test_core_axes_supported(self):
        for axis in (Axis.CHILD, Axis.DESCENDANT, Axis.ANCESTOR, Axis.FOLLOWING):
            assert GALAX_PROFILE.supports_axis(axis)

    def test_no_size_cap(self):
        assert GALAX_PROFILE.accepts_size(10**9)


class TestJaxen:
    def test_all_axes(self):
        assert all(JAXEN_PROFILE.supports_axis(axis) for axis in Axis)

    def test_ten_megabyte_cap(self):
        assert JAXEN_PROFILE.accepts_size(9 * _MB)
        assert not JAXEN_PROFILE.accepts_size(10 * _MB)
        assert not JAXEN_PROFILE.accepts_size(30 * _MB)


class TestExist:
    def test_missing_ordered_axes(self):
        for axis in (
            Axis.FOLLOWING_SIBLING,
            Axis.PRECEDING_SIBLING,
            Axis.FOLLOWING,
            Axis.PRECEDING,
        ):
            assert not EXIST_PROFILE.supports_axis(axis)

    def test_twenty_megabyte_cap(self):
        assert EXIST_PROFILE.accepts_size(19 * _MB)
        assert not EXIST_PROFILE.accepts_size(20 * _MB)

    def test_value_predicate_fallback_flag(self):
        assert EXIST_PROFILE.value_predicate_fallback
        assert not GALAX_PROFILE.value_predicate_fallback


class TestXindice:
    def test_five_megabyte_cap(self):
        assert XINDICE_PROFILE.accepts_size(4 * _MB)
        assert not XINDICE_PROFILE.accepts_size(5 * _MB)


class TestCustomProfile:
    def test_frozen(self):
        import pytest

        with pytest.raises(AttributeError):
            GALAX_PROFILE.name = "other"

    def test_custom(self):
        profile = EngineProfile(
            name="mini", supported_axes=frozenset({Axis.CHILD}), max_document_bytes=100
        )
        assert profile.supports_axis(Axis.CHILD)
        assert not profile.supports_axis(Axis.PARENT)
        assert profile.accepts_size(99) and not profile.accepts_size(100)
