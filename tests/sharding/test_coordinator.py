"""Scatter-gather coordinator: differential identity, pruning, budgets.

The acceptance bar: for every worker count, the sharded answer must be
*byte-identical* to the unsharded :class:`~repro.engine.database.Database`
— same documents, same keys, same order — and ``count()`` must sum
exactly.  Routing evidence (pruned/contacted shards) and fleet-metric
aggregation ride on the same fixtures.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.errors import (
    BudgetExceededError,
    ExecutionError,
    QueryTimeoutError,
    ShardingError,
)
from repro.sharding import ShardedDatabase, build_shards, build_subtree_shards
from repro.sharding.coordinator import (
    _ERROR_TYPES,
    main_path_names,
    revive_error,
    split_count_expression,
    subtree_hazards,
)

from tests.sharding.conftest import reference_rows

QUERIES = [
    "//person/address",
    "//watches/watch/ancestor::person",
    "/descendant::name/parent::*/self::person/address",
    "//itemref/following-sibling::price/parent::*",
    "//province[text()='Vermont']/ancestor::person",
    "//open_auction//description//text()",  # deep predicate-free chain
    "/site/people/person[@id]/name",
]


@pytest.fixture(scope="module", params=[1, 2, 4, 8])
def sharded(request, collection_stores, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp(f"shards-{request.param}"))
    build_shards(collection_stores, directory, request.param, "round_robin")
    db = ShardedDatabase(directory)
    yield db
    db.close()


class TestDifferentialIdentity:
    @pytest.mark.parametrize("expression", QUERIES)
    def test_rows_byte_identical_to_unsharded(
        self, sharded, collection_db, expression
    ):
        outcome = sharded.evaluate(expression)
        assert outcome.ok, outcome.describe()
        assert outcome.rows == reference_rows(collection_db, expression)

    @pytest.mark.parametrize(
        "expression", ["count(//item)", "count(//person)", "count(//book)"]
    )
    def test_counts_sum_exactly(self, sharded, collection_db, expression):
        outcome = sharded.evaluate(expression)
        assert outcome.mode == "count"
        inner = expression[len("count(") : -1]
        expected = sum(
            len(result) for result in collection_db.evaluate(inner).values()
        )
        assert outcome.count == expected
        assert sum(outcome.per_document_counts.values()) == expected

    def test_random_hash_assignment_also_identical(
        self, collection_stores, collection_db, tmp_path
    ):
        rng = random.Random(5)
        for trial in range(3):
            shards = rng.choice([2, 3, 5])
            directory = str(tmp_path / f"t{trial}")
            build_shards(collection_stores, directory, shards, "hash")
            with ShardedDatabase(directory) as db:
                for expression in QUERIES[:3]:
                    assert db.evaluate(expression).rows == reference_rows(
                        collection_db, expression
                    )


class TestSubtreeIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_range_partitioned_document_is_identical(
        self, xmark_store, tmp_path, shards
    ):
        from repro.engine.engine import VamanaEngine

        engine = VamanaEngine(xmark_store)
        directory = str(tmp_path / f"sub{shards}")
        build_subtree_shards(xmark_store, directory, shards)
        with ShardedDatabase(directory) as db:
            for expression in [
                "/site/people/person/name",
                "//item/name",
                "//person[@id]",
            ]:
                expected = [
                    (xmark_store.name, key.sort_bytes)
                    for key in engine.evaluate(expression).keys
                ]
                assert db.evaluate(expression).rows == expected
            count = db.evaluate("count(//item)")
            assert count.count == engine.evaluate_value("count(//item)")


class TestSubtreeQuerySurface:
    """A subtree manifest must reject, not silently mis-merge, queries
    whose semantics cross the depth-2 split boundaries."""

    HAZARDOUS = [
        "/site/*[1]",
        "/site/regions[2]",
        "//item[1]",
        "/site/*[position() = 2]",
        "/site/*[last()]",
        "/descendant::item[3]",
        "/site/open_auctions/following-sibling::*",
        "//following::item",
        "//person/preceding::name",
    ]
    SAFE = [
        "/site/people/person/name",
        "//item/name",
        "//person[@id]",
        "/site/regions/africa/item[2]",  # depth 4: subtree-local positions
        "/site/people/person/watches/watch[last()]",
        "//province[text()='Vermont']/ancestor::person",
        "count(//item)",
    ]

    @pytest.mark.parametrize("expression", HAZARDOUS)
    def test_hazard_detected(self, expression):
        assert subtree_hazards(expression), expression

    @pytest.mark.parametrize("expression", SAFE)
    def test_safe_queries_pass(self, expression):
        assert subtree_hazards(expression) == [], expression

    def test_subtree_manifest_rejects_hazardous_queries(
        self, xmark_store, tmp_path
    ):
        directory = str(tmp_path / "subtree-guard")
        build_subtree_shards(xmark_store, directory, 2)
        with ShardedDatabase(directory) as db:
            with pytest.raises(ShardingError, match="subtree-partitioned"):
                db.evaluate("/site/*[1]")
            with pytest.raises(ShardingError, match="subtree-partitioned"):
                db.explain("/site/open_auctions/following-sibling::*")
            outcome = db.evaluate("//item/name")  # safe query still served
            assert outcome.ok

    def test_collection_manifest_accepts_full_surface(self, sharded):
        # Whole documents never split: sibling axes and positions are fine.
        outcome = sharded.evaluate("//itemref/following-sibling::price")
        assert outcome.ok


class TestErrorRevival:
    @pytest.mark.parametrize("name", sorted(_ERROR_TYPES))
    def test_every_wire_name_revives_typed(self, name):
        error = revive_error(name, "worker said so")
        assert type(error) is _ERROR_TYPES[name]
        assert "worker said so" in str(error)

    def test_timeout_message_revives_without_value_error(self):
        # Regression: QueryTimeoutError('msg') raises ValueError from its
        # numeric format; revival must fall back, not crash the gather.
        error = revive_error(
            "QueryTimeoutError", "query exceeded its 5 ms deadline"
        )
        assert isinstance(error, QueryTimeoutError)
        assert "5 ms deadline" in str(error)

    def test_unknown_name_degrades_to_execution_error(self):
        error = revive_error("NoSuchError", "boom")
        assert isinstance(error, ExecutionError)
        assert "NoSuchError" in str(error)

    def test_worker_timeout_surfaces_as_typed_partial(
        self, collection_stores, tmp_path
    ):
        # End to end: a per-shard deadline trips inside the workers and
        # must come back as typed doc_errors the serving path can revive.
        directory = str(tmp_path / "deadline")
        build_shards(collection_stores, directory, 2, "round_robin")
        with ShardedDatabase(directory) as db:
            outcome = db.evaluate("//person/address", timeout_ms=0.0001)
            assert not outcome.ok
            error = outcome.first_error()  # revival must not raise
            assert isinstance(error, QueryTimeoutError)


class TestRouting:
    def test_pruning_isolates_the_odd_document(self, sharded):
        outcome = sharded.evaluate("//book/title")
        assert outcome.ok
        assert {doc for doc, _ in outcome.rows} == {"library"}
        assert outcome.shards_contacted == 1
        assert outcome.shards_contacted + outcome.shards_pruned == (
            sharded.manifest.shard_count
        )

    def test_unsatisfiable_query_contacts_nobody(self, sharded):
        outcome = sharded.evaluate("//no_such_element_anywhere")
        assert outcome.ok
        assert outcome.rows == []
        assert outcome.shards_contacted == 0

    def test_count_query_prunes_too(self, sharded):
        outcome = sharded.evaluate("count(//book)")
        assert outcome.count == 2
        assert outcome.shards_contacted <= 1

    def test_route_metadata_present(self, sharded):
        outcome = sharded.evaluate("//person/address")
        assert outcome.route in ("scatter", "single")
        assert outcome.route_reason
        assert "shards" in outcome.describe()


class TestHelpers:
    def test_split_count_expression(self):
        assert split_count_expression("count(//a/b)") is not None
        assert split_count_expression("//a/b") is None
        assert split_count_expression("count(//a) + 1") is None
        assert split_count_expression("sum(//a)") is None

    def test_main_path_names(self):
        assert main_path_names("/site/people/person") == [
            ["site", "people", "person"]
        ]
        assert main_path_names("//person[@id]/name") == [["person", "name"]]
        branches = main_path_names("//a | //b")
        assert sorted(branches) == [["a"], ["b"]]
        assert main_path_names("//person/@id") == [["person", "@id"]]


class TestFleetMetrics:
    def test_counters_aggregate_across_workers(self, sharded):
        outcome = sharded.evaluate("//person/address")
        if sharded.manifest.shard_count == 1:
            assert len(outcome.per_shard_counters) == 1
        assert outcome.counters.get("logical_reads", 0) > 0
        assert sum(
            counters.get("logical_reads", 0)
            for counters in outcome.per_shard_counters.values()
        ) == outcome.counters["logical_reads"]
        stats = sharded.stats()
        assert stats["fleet_counters"]["logical_reads"] > 0
        assert stats["workers_alive"] == sharded.manifest.shard_count

    def test_explain_reports_route_and_plans(self, sharded):
        text = sharded.explain("//person/address")
        assert "route:" in text
        assert "shard" in text


class TestBudgetsAndErrors:
    def test_page_budget_captured_per_document(self, sharded):
        outcome = sharded.evaluate("//person/address", max_pages=1)
        assert not outcome.ok
        assert outcome.partial
        names = {name for status in outcome.failures
                 for _, name, _ in status.doc_errors}
        assert "BudgetExceededError" in names

    def test_count_mode_enforces_budgets_too(self, sharded):
        # Regression: the collection-shard count path skipped the guard,
        # so page budgets silently did not apply to count() queries.
        outcome = sharded.evaluate("count(//person[@id])", max_pages=1)
        assert outcome.mode == "count"
        assert outcome.partial
        names = {name for status in outcome.failures
                 for _, name, _ in status.doc_errors}
        assert "BudgetExceededError" in names

    def test_tight_credit_window_spans_documents(self, sharded, collection_db):
        # One credit window per request (not per document): with the
        # tightest window the merge must still drain every document.
        expression = "//person/name"
        outcome = sharded.evaluate(expression, block_keys=3, window=1)
        assert outcome.ok
        assert outcome.rows == reference_rows(collection_db, expression)

    def test_on_error_raise_propagates_typed(self, sharded):
        with pytest.raises(BudgetExceededError):
            sharded.evaluate("//person/address", max_pages=1, on_error="raise")

    def test_reordered_manifest_still_routes_by_shard_id(
        self, collection_stores, collection_db, tmp_path
    ):
        # Workers are addressed by manifest shard id, never list
        # position: a hand-reordered manifest must route identically.
        directory = str(tmp_path / "reordered")
        build_shards(collection_stores, directory, 3, "round_robin")
        path = os.path.join(directory, "manifest.json")
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["shards"].reverse()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with ShardedDatabase(directory) as db:
            for expression in ("//book/title", "//person/name"):
                outcome = db.evaluate(expression)
                assert outcome.ok, outcome.describe()
                assert outcome.rows == reference_rows(collection_db, expression)

    def test_duplicate_shard_ids_rejected(self, collection_stores, tmp_path):
        directory = str(tmp_path / "dup-ids")
        build_shards(collection_stores, directory, 2, "round_robin")
        path = os.path.join(directory, "manifest.json")
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        for entry in data["shards"]:
            entry["id"] = 0
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(ShardingError, match="duplicate shard id"):
            ShardedDatabase(directory)

    def test_closed_database_refuses_queries(
        self, collection_stores, tmp_path
    ):
        directory = str(tmp_path / "closing")
        build_shards(collection_stores, directory, 2, "round_robin")
        db = ShardedDatabase(directory)
        db.close()
        db.close()  # idempotent
        with pytest.raises(ShardingError):
            db.evaluate("//person")


class TestDatabaseBridge:
    def test_to_sharded_round_trip(self, collection_db, tmp_path):
        directory = str(tmp_path / "bridge")
        with collection_db.to_sharded(directory, shards=3) as db:
            expression = "//person/name"
            assert db.evaluate(expression).rows == reference_rows(
                collection_db, expression
            )
