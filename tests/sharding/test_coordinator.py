"""Scatter-gather coordinator: differential identity, pruning, budgets.

The acceptance bar: for every worker count, the sharded answer must be
*byte-identical* to the unsharded :class:`~repro.engine.database.Database`
— same documents, same keys, same order — and ``count()`` must sum
exactly.  Routing evidence (pruned/contacted shards) and fleet-metric
aggregation ride on the same fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import BudgetExceededError, ShardingError
from repro.sharding import ShardedDatabase, build_shards, build_subtree_shards
from repro.sharding.coordinator import main_path_names, split_count_expression

from tests.sharding.conftest import reference_rows

QUERIES = [
    "//person/address",
    "//watches/watch/ancestor::person",
    "/descendant::name/parent::*/self::person/address",
    "//itemref/following-sibling::price/parent::*",
    "//province[text()='Vermont']/ancestor::person",
    "//open_auction//description//text()",  # deep predicate-free chain
    "/site/people/person[@id]/name",
]


@pytest.fixture(scope="module", params=[1, 2, 4, 8])
def sharded(request, collection_stores, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp(f"shards-{request.param}"))
    build_shards(collection_stores, directory, request.param, "round_robin")
    db = ShardedDatabase(directory)
    yield db
    db.close()


class TestDifferentialIdentity:
    @pytest.mark.parametrize("expression", QUERIES)
    def test_rows_byte_identical_to_unsharded(
        self, sharded, collection_db, expression
    ):
        outcome = sharded.evaluate(expression)
        assert outcome.ok, outcome.describe()
        assert outcome.rows == reference_rows(collection_db, expression)

    @pytest.mark.parametrize(
        "expression", ["count(//item)", "count(//person)", "count(//book)"]
    )
    def test_counts_sum_exactly(self, sharded, collection_db, expression):
        outcome = sharded.evaluate(expression)
        assert outcome.mode == "count"
        inner = expression[len("count(") : -1]
        expected = sum(
            len(result) for result in collection_db.evaluate(inner).values()
        )
        assert outcome.count == expected
        assert sum(outcome.per_document_counts.values()) == expected

    def test_random_hash_assignment_also_identical(
        self, collection_stores, collection_db, tmp_path
    ):
        rng = random.Random(5)
        for trial in range(3):
            shards = rng.choice([2, 3, 5])
            directory = str(tmp_path / f"t{trial}")
            build_shards(collection_stores, directory, shards, "hash")
            with ShardedDatabase(directory) as db:
                for expression in QUERIES[:3]:
                    assert db.evaluate(expression).rows == reference_rows(
                        collection_db, expression
                    )


class TestSubtreeIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_range_partitioned_document_is_identical(
        self, xmark_store, tmp_path, shards
    ):
        from repro.engine.engine import VamanaEngine

        engine = VamanaEngine(xmark_store)
        directory = str(tmp_path / f"sub{shards}")
        build_subtree_shards(xmark_store, directory, shards)
        with ShardedDatabase(directory) as db:
            for expression in [
                "/site/people/person/name",
                "//item/name",
                "//person[@id]",
            ]:
                expected = [
                    (xmark_store.name, key.sort_bytes)
                    for key in engine.evaluate(expression).keys
                ]
                assert db.evaluate(expression).rows == expected
            count = db.evaluate("count(//item)")
            assert count.count == engine.evaluate_value("count(//item)")


class TestRouting:
    def test_pruning_isolates_the_odd_document(self, sharded):
        outcome = sharded.evaluate("//book/title")
        assert outcome.ok
        assert {doc for doc, _ in outcome.rows} == {"library"}
        assert outcome.shards_contacted == 1
        assert outcome.shards_contacted + outcome.shards_pruned == (
            sharded.manifest.shard_count
        )

    def test_unsatisfiable_query_contacts_nobody(self, sharded):
        outcome = sharded.evaluate("//no_such_element_anywhere")
        assert outcome.ok
        assert outcome.rows == []
        assert outcome.shards_contacted == 0

    def test_count_query_prunes_too(self, sharded):
        outcome = sharded.evaluate("count(//book)")
        assert outcome.count == 2
        assert outcome.shards_contacted <= 1

    def test_route_metadata_present(self, sharded):
        outcome = sharded.evaluate("//person/address")
        assert outcome.route in ("scatter", "single")
        assert outcome.route_reason
        assert "shards" in outcome.describe()


class TestHelpers:
    def test_split_count_expression(self):
        assert split_count_expression("count(//a/b)") is not None
        assert split_count_expression("//a/b") is None
        assert split_count_expression("count(//a) + 1") is None
        assert split_count_expression("sum(//a)") is None

    def test_main_path_names(self):
        assert main_path_names("/site/people/person") == [
            ["site", "people", "person"]
        ]
        assert main_path_names("//person[@id]/name") == [["person", "name"]]
        branches = main_path_names("//a | //b")
        assert sorted(branches) == [["a"], ["b"]]
        assert main_path_names("//person/@id") == [["person", "@id"]]


class TestFleetMetrics:
    def test_counters_aggregate_across_workers(self, sharded):
        outcome = sharded.evaluate("//person/address")
        if sharded.manifest.shard_count == 1:
            assert len(outcome.per_shard_counters) == 1
        assert outcome.counters.get("logical_reads", 0) > 0
        assert sum(
            counters.get("logical_reads", 0)
            for counters in outcome.per_shard_counters.values()
        ) == outcome.counters["logical_reads"]
        stats = sharded.stats()
        assert stats["fleet_counters"]["logical_reads"] > 0
        assert stats["workers_alive"] == sharded.manifest.shard_count

    def test_explain_reports_route_and_plans(self, sharded):
        text = sharded.explain("//person/address")
        assert "route:" in text
        assert "shard" in text


class TestBudgetsAndErrors:
    def test_page_budget_captured_per_document(self, sharded):
        outcome = sharded.evaluate("//person/address", max_pages=1)
        assert not outcome.ok
        assert outcome.partial
        names = {name for status in outcome.failures
                 for _, name, _ in status.doc_errors}
        assert "BudgetExceededError" in names

    def test_on_error_raise_propagates_typed(self, sharded):
        with pytest.raises(BudgetExceededError):
            sharded.evaluate("//person/address", max_pages=1, on_error="raise")

    def test_closed_database_refuses_queries(
        self, collection_stores, tmp_path
    ):
        directory = str(tmp_path / "closing")
        build_shards(collection_stores, directory, 2, "round_robin")
        db = ShardedDatabase(directory)
        db.close()
        db.close()  # idempotent
        with pytest.raises(ShardingError):
            db.evaluate("//person")


class TestDatabaseBridge:
    def test_to_sharded_round_trip(self, collection_db, tmp_path):
        directory = str(tmp_path / "bridge")
        with collection_db.to_sharded(directory, shards=3) as db:
            expression = "//person/name"
            assert db.evaluate(expression).rows == reference_rows(
                collection_db, expression
            )
