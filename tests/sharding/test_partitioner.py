"""Partitioner: placement schemes, manifest round-trip, subtree splits."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ShardingError
from repro.mass.flexkey import decode_sort_bytes
from repro.mass.loader import load_xml
from repro.mass.persistence import open_store
from repro.sharding import (
    build_shards,
    build_subtree_shards,
    load_manifest,
    partition_names,
)
from repro.sharding.partitioner import MANIFEST_NAME


class TestPartitionNames:
    def test_round_robin_balances_exactly(self):
        names = [f"doc{i}" for i in range(10)]
        placement = partition_names(names, 4, "round_robin")
        sizes = [list(placement.values()).count(s) for s in range(4)]
        assert sorted(sizes) == [2, 2, 3, 3]

    def test_hash_is_stable_across_calls(self):
        names = [f"doc{i}" for i in range(50)]
        assert partition_names(names, 8, "hash") == partition_names(
            names, 8, "hash"
        )

    def test_hash_ignores_input_order(self):
        names = [f"doc{i}" for i in range(20)]
        assert partition_names(names, 4, "hash") == partition_names(
            list(reversed(names)), 4, "hash"
        )

    def test_rejects_bad_scheme_and_counts(self):
        with pytest.raises(ShardingError):
            partition_names(["a"], 0)
        with pytest.raises(ShardingError):
            partition_names(["a"], 2, "zigzag")


class TestBuildShards:
    def test_layout_and_manifest_round_trip(self, collection_stores, tmp_path):
        directory = str(tmp_path / "shards")
        manifest = build_shards(collection_stores, directory, 3, "round_robin")
        assert os.path.exists(os.path.join(directory, MANIFEST_NAME))
        loaded = load_manifest(directory)
        assert loaded.scheme == "round_robin"
        assert loaded.shard_count == 3
        assert sorted(loaded.document_names()) == sorted(
            name for name, _ in collection_stores
        )
        # Every named file exists and opens as a healthy store.
        for spec in loaded.shards:
            for doc in spec.documents:
                store = open_store(os.path.join(directory, doc["file"]))
                assert len(store.node_index) == doc["nodes"]
        assert manifest.total_nodes == sum(
            len(store.node_index) for _, store in collection_stores
        )

    def test_manifest_vocabulary_and_counts(self, collection_stores, tmp_path):
        directory = str(tmp_path / "shards")
        build_shards(collection_stores, directory, 2, "round_robin")
        manifest = load_manifest(directory)
        by_doc = dict(collection_stores)
        for spec in manifest.shards:
            elements = set(spec.elements)
            for doc in spec.documents:
                store = by_doc[doc["name"]]
                for name in store.name_index.distinct_names():
                    if name.startswith("@"):
                        assert name[1:] in spec.attributes
                    elif not name.startswith(("#", "?")):
                        assert name in elements
                    assert spec.name_counts[name] >= store.name_index.count(name)

    def test_empty_shards_are_legal(self, tmp_path):
        store = load_xml("<r><a/></r>", name="only")
        directory = str(tmp_path / "shards")
        manifest = build_shards([("only", store)], directory, 4, "hash")
        assert manifest.shard_count == 4
        populated = [spec for spec in manifest.shards if spec.documents]
        assert len(populated) == 1

    def test_duplicate_names_rejected(self, tmp_path):
        store = load_xml("<r/>", name="d")
        with pytest.raises(ShardingError):
            build_shards(
                [("d", store), ("d", store)], str(tmp_path / "s"), 2
            )

    def test_hostile_document_names_stay_on_disk(self, tmp_path):
        store = load_xml("<r><x/></r>", name="weird")
        directory = str(tmp_path / "shards")
        manifest = build_shards(
            [("../../etc/passwd", store), ("a b/c", store.clone())],
            directory,
            1,
        )
        for spec in manifest.shards:
            for doc in spec.documents:
                path = os.path.join(directory, doc["file"])
                assert os.path.realpath(path).startswith(
                    os.path.realpath(directory)
                )
                assert os.path.exists(path)

    def test_corrupt_manifest_raises_typed(self, tmp_path):
        directory = tmp_path / "shards"
        directory.mkdir()
        (directory / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ShardingError):
            load_manifest(str(directory))
        with pytest.raises(ShardingError):
            load_manifest(str(tmp_path / "nowhere"))


class TestSubtreeShards:
    def test_ranges_cover_and_are_disjoint(self, xmark_store, tmp_path):
        directory = str(tmp_path / "shards")
        manifest = build_subtree_shards(xmark_store, directory, 4)
        assert manifest.is_range_partitioned
        edges = [spec.owned_range() for spec in manifest.shards]
        assert edges[0][0] is None and edges[-1][1] is None
        for (left_lo, left_hi), (right_lo, right_hi) in zip(edges, edges[1:]):
            assert left_hi == right_lo  # half-open ranges tile the keyspace

    def test_spine_replicated_and_ownership_filters(self, xmark_store, tmp_path):
        directory = str(tmp_path / "shards")
        manifest = build_subtree_shards(xmark_store, directory, 3)
        for spec in manifest.shards:
            store = open_store(os.path.join(directory, spec.documents[0]["file"]))
            assert store.root_element().name == "site"
        # Every original record is owned by exactly one shard.
        total_owned = 0
        for spec in manifest.shards:
            lo, hi = spec.owned_range()
            for record in xmark_store.node_index.scan(None, None):
                blob = record.key.sort_bytes
                if (lo is None or blob >= lo) and (hi is None or blob < hi):
                    total_owned += 1
        assert total_owned == len(xmark_store.node_index)

    def test_split_keys_sit_at_depth_two(self, xmark_store, tmp_path):
        directory = str(tmp_path / "shards")
        manifest = build_subtree_shards(xmark_store, directory, 4)
        for spec in manifest.shards[1:]:
            lo, _ = spec.owned_range()
            key = decode_sort_bytes(lo)
            assert key.depth == 2  # splits align to document-element children

    def test_too_many_shards_rejected(self, tmp_path):
        store = load_xml("<r><a/><b/></r>", name="tiny")
        with pytest.raises(ShardingError):
            build_subtree_shards(store, str(tmp_path / "s"), 5)
