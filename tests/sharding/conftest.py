"""Shared sharding fixtures: a small multi-document collection."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.mass.loader import load_xml
from repro.xmark.generator import generate_document

#: Deliberately non-XMark: pruning should isolate its queries.
LIBRARY_DOC = (
    "<library><shelf><book><title>One</title></book>"
    "<book><title>Two</title></book></shelf></library>"
)


@pytest.fixture(scope="session")
def collection_stores():
    """Four small XMark documents plus one odd document."""
    stores = []
    for index in range(4):
        name = f"auction-{index}"
        xml = generate_document(factor=0.002, seed=100 + index)
        stores.append((name, load_xml(xml, name=name)))
    stores.append(("library", load_xml(LIBRARY_DOC, name="library")))
    return stores


@pytest.fixture(scope="session")
def collection_db(collection_stores):
    """The unsharded reference: same documents in one in-process Database."""
    db = Database()
    for name, store in collection_stores:
        db.add_store(name, store)
    return db


def reference_rows(db, expression):
    """The unsharded engine's answer as merged (document, sort_bytes) rows."""
    rows = []
    for name, result in sorted(db.evaluate(expression).items()):
        rows.extend((name, key.sort_bytes) for key in result.keys)
    return rows
