"""Worker-death chaos: a killed shard must become a typed partial result.

The gather loop's contract: a worker that dies mid-query (hard kill or
the seeded ``shard.worker.crash`` site, which ``os._exit``s the process)
surfaces as a :class:`~repro.errors.ShardWorkerCrashError` captured in
that shard's status — within the deadline, with the surviving shards'
rows intact, with the dead worker respawned for the next query, and with
no child process left after ``close()``.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.errors import ShardWorkerCrashError
from repro.sharding import ShardedDatabase, build_shards


@pytest.fixture()
def shard_dir(collection_stores, tmp_path):
    directory = str(tmp_path / "shards")
    build_shards(collection_stores, directory, 4, "round_robin")
    return directory


def _own_children():
    return multiprocessing.active_children()


class TestInjectedCrash:
    def test_crash_site_yields_typed_partial_outcome(self, shard_dir):
        db = ShardedDatabase(
            shard_dir,
            fault_rates={"shard.worker.crash": 0.5},
            fault_seed=2,
        )
        try:
            started = time.monotonic()
            outcome = db.evaluate("//person/name", timeout_ms=5000)
            elapsed = time.monotonic() - started
            assert elapsed < 8.0, "gather loop hung on the dead worker"
            crashed = [
                status
                for status in outcome.shard_status
                if isinstance(status.error, ShardWorkerCrashError)
            ]
            survivors = [
                status for status in outcome.shard_status if status.state == "ok"
            ]
            assert crashed, "seeded chaos fired no crash"
            assert survivors, "seeded chaos killed every shard"
            assert outcome.partial and not outcome.ok
            assert outcome.rows, "surviving shards' rows were lost"
            assert db.stats()["crashes_captured"] >= len(crashed)
        finally:
            db.close()

    def test_crashed_worker_is_respawned(self, shard_dir):
        db = ShardedDatabase(
            shard_dir,
            fault_rates={"shard.worker.crash": 1.0},
            fault_seed=0,
        )
        try:
            first = db.evaluate("//person/name", timeout_ms=5000)
            assert first.partial
            assert all(
                isinstance(status.error, ShardWorkerCrashError)
                for status in first.shard_status
            )
            # Every worker crashed and was respawned: the fleet answers
            # pings (the crash site only arms on query dispatch), and a
            # second query is captured again rather than hanging.
            assert all(db.ping().values())
            stats = db.stats()
            assert stats["respawns"] >= db.manifest.shard_count
            assert stats["workers_alive"] == db.manifest.shard_count
            second = db.evaluate("//person/name", timeout_ms=5000)
            assert second.partial and second.failures
        finally:
            db.close()


class TestHardKill:
    def test_sigkilled_worker_is_captured_not_hung(self, shard_dir):
        db = ShardedDatabase(shard_dir)
        try:
            victim = db.workers[1]
            victim.process.kill()
            victim.process.join(timeout=5)
            started = time.monotonic()
            outcome = db.evaluate("//person/name", timeout_ms=5000)
            elapsed = time.monotonic() - started
            assert elapsed < 8.0
            assert outcome.rows, "other shards must still answer"
            # The dead worker was respawned before (or after) the query;
            # either way the next query is whole again.
            followup = db.evaluate("//person/name", timeout_ms=5000)
            assert followup.ok, followup.describe()
        finally:
            db.close()

    def test_dead_worker_is_healed_before_scatter(self, shard_dir):
        db = ShardedDatabase(shard_dir)
        try:
            # A worker found dead *before* the scatter is respawned
            # transparently: the query comes back whole, not partial.
            victim = db.workers[0]
            victim.process.kill()
            victim.process.join(timeout=5)
            outcome = db.evaluate("//person/name", timeout_ms=5000)
            assert outcome.ok, outcome.describe()
            assert db.stats()["respawns"] >= 1
        finally:
            db.close()


class TestNoZombies:
    def test_close_leaves_no_children(self, shard_dir):
        db = ShardedDatabase(shard_dir)
        db.evaluate("//person/name")
        assert db.stats()["workers_alive"] == 4
        db.close()
        deadline = time.monotonic() + 5.0
        while _own_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not _own_children(), "worker processes survived close()"

    def test_close_after_crashes_leaves_no_children(self, shard_dir):
        db = ShardedDatabase(
            shard_dir,
            fault_rates={"shard.worker.crash": 1.0},
            fault_seed=1,
        )
        db.evaluate("//person/name", timeout_ms=5000)
        db.close()
        deadline = time.monotonic() + 5.0
        while _own_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not _own_children()
