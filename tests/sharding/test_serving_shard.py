"""Serving a sharded collection over the existing TCP line protocol."""

from __future__ import annotations

import json
import socket

import pytest

from repro.serving.frontend import TcpFrontend, outcome_to_wire
from repro.sharding import ShardQueryServer, ShardedDatabase, build_shards


@pytest.fixture(scope="module")
def shard_server(collection_stores, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("serving-shards"))
    build_shards(collection_stores, directory, 2, "round_robin")
    with ShardedDatabase(directory) as db:
        with ShardQueryServer(db) as server:
            yield server


class TestShardQueryServer:
    def test_evaluate_returns_query_outcome(self, shard_server):
        outcome = shard_server.evaluate("//person/name", timeout_ms=10_000)
        assert outcome.ok
        assert len(outcome.result) > 0
        assert outcome.error is None
        wire = outcome_to_wire(outcome)
        assert wire["ok"] and wire["count"] == len(outcome.result)
        assert wire["labels"]

    def test_error_outcome_is_captured(self, shard_server):
        outcome = shard_server.evaluate("//person/name", max_results=1)
        assert not outcome.ok
        assert outcome.partial
        assert type(outcome.error).__name__ == "BudgetExceededError"

    def test_stats_merges_server_and_fleet(self, shard_server):
        shard_server.evaluate("//person/name")
        stats = shard_server.stats()
        assert stats["served"] >= 1
        assert stats["shards"] == 2
        assert stats["workers_alive"] == 2


class TestTcpOverShards:
    def test_line_protocol_end_to_end(self, shard_server):
        with TcpFrontend(shard_server, port=0) as frontend:
            host, port = frontend.address
            with socket.create_connection((host, port), timeout=10) as sock:
                stream = sock.makefile("rw", encoding="utf-8")
                stream.write("//book/title\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] and response["count"] == 2
                stream.write(
                    json.dumps({"xpath": "count(//person)"}) + "\n"
                )
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"]
                stream.write("!stats\n")
                stream.flush()
                stats = json.loads(stream.readline())
                assert stats["shards"] == 2
