"""Property tests: the k-way byte merge is assignment-invariant.

The load-bearing claim of partitioned execution is that *where* a
document (or key range) lands must never change *what* a query returns.
These tests randomize shard assignments and check the merged
``sort_bytes`` sequence is byte-identical to the single-list reference,
including dedup behavior, empty shards and the one-shard degenerate
case.
"""

from __future__ import annotations

import random

from repro.mass.flexkey import FlexKey, decode_sort_bytes
from repro.sharding import kway_merge


def random_keys(rng: random.Random, count: int) -> list[bytes]:
    keys = set()
    while len(keys) < count:
        depth = rng.randint(1, 6)
        key = FlexKey.from_ordinals([rng.randint(0, 300) for _ in range(depth)])
        keys.add(key.sort_bytes)
    return sorted(keys)


class TestMergeProperty:
    def test_random_assignments_are_byte_identical(self):
        rng = random.Random(7)
        for trial in range(25):
            universe = random_keys(rng, rng.randint(0, 200))
            shards = rng.randint(1, 8)
            streams = [[] for _ in range(shards)]
            for blob in universe:
                streams[rng.randrange(shards)].append(blob)
            merged = list(kway_merge([iter(s) for s in streams]))
            assert merged == universe, f"trial {trial} diverged"

    def test_dedup_matches_set_semantics(self):
        rng = random.Random(11)
        for trial in range(25):
            universe = random_keys(rng, rng.randint(1, 120))
            shards = rng.randint(2, 6)
            # Duplicate some keys across shards: dedup must restore
            # exactly the sorted set, like the engine's union merge.
            streams = [[] for _ in range(shards)]
            for blob in universe:
                owners = rng.sample(range(shards), rng.randint(1, shards))
                for owner in owners:
                    streams[owner].append(blob)
            merged = list(kway_merge([iter(s) for s in streams], dedup=True))
            assert merged == universe

    def test_without_dedup_multiplicity_is_preserved(self):
        merged = list(
            kway_merge([iter([b"a", b"c"]), iter([b"a", b"b"])], dedup=False)
        )
        assert merged == [b"a", b"a", b"b", b"c"]

    def test_empty_and_single_stream_cases(self):
        assert list(kway_merge([])) == []
        assert list(kway_merge([iter([])])) == []
        assert list(kway_merge([iter([]), iter([])])) == []
        only = [b"a", b"b", b"c"]
        assert list(kway_merge([iter(only)])) == only
        assert list(kway_merge([iter(only), iter([])])) == only

    def test_tuple_items_order_by_document_then_key(self):
        streams = [
            [("a", b"\x02"), ("b", b"\x01")],
            [("a", b"\x03"), ("c", b"\x01")],
        ]
        merged = list(kway_merge([iter(s) for s in streams]))
        assert merged == [
            ("a", b"\x02"),
            ("a", b"\x03"),
            ("b", b"\x01"),
            ("c", b"\x01"),
        ]

    def test_merge_is_lazy(self):
        """The merge must not drain any stream eagerly."""
        pulled = []

        def stream(tag, blobs):
            for blob in blobs:
                pulled.append(tag)
                yield blob

        merged = kway_merge(
            [stream("a", [b"\x01", b"\x03"]), stream("b", [b"\x02", b"\x04"])]
        )
        next(merged)  # yields a's first item
        # One item consumed: at most one extra element buffered per
        # stream (the heads + one successor), never a full drain.
        assert pulled.count("a") <= 2 and pulled.count("b") <= 2


class TestDecodeSortBytes:
    def test_round_trip_random_keys(self):
        rng = random.Random(3)
        for blob in random_keys(rng, 200):
            assert decode_sort_bytes(blob).sort_bytes == blob
