"""fsck over shard directories: per-shard summary, damage detection, CLI."""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.resilience import corrupt_file
from repro.sharding import build_shards, fsck_shards


@pytest.fixture()
def shard_dir(collection_stores, tmp_path):
    directory = str(tmp_path / "shards")
    build_shards(collection_stores, directory, 3, "round_robin")
    return directory


def _first_store_file(directory):
    for root, _dirs, files in os.walk(directory):
        for name in sorted(files):
            if name.endswith(".mass"):
                return os.path.join(root, name)
    raise AssertionError("no shard store files found")


class TestFsckShards:
    def test_healthy_directory_is_ok(self, shard_dir):
        report = fsck_shards(shard_dir)
        assert report.ok
        assert not report.missing
        assert len({shard for shard, _, _ in report.reports}) == 3
        text = report.describe()
        assert "shard" in text and "ok" in text

    def test_corruption_is_detected_and_attributed(self, shard_dir):
        path = _first_store_file(shard_dir)
        corrupt_file(path, [os.path.getsize(path) // 2])
        report = fsck_shards(shard_dir)
        assert not report.ok
        damaged_paths = [item[1] for item in report.damaged]
        assert os.path.relpath(path, shard_dir) in damaged_paths
        assert "damaged" in report.describe().lower()

    def test_missing_file_is_reported(self, shard_dir):
        path = _first_store_file(shard_dir)
        os.remove(path)
        report = fsck_shards(shard_dir)
        assert not report.ok
        missing_files = [item[1] for item in report.missing]
        assert os.path.relpath(path, shard_dir) in missing_files

    def test_missing_manifest_raises(self, tmp_path):
        from repro.errors import ShardingError

        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ShardingError):
            fsck_shards(str(empty))


class TestFsckCli:
    def test_cli_healthy_directory_exit_zero(self, shard_dir, capsys):
        assert main(["fsck", shard_dir]) == 0
        output = capsys.readouterr().out
        assert "shard" in output

    def test_cli_damaged_directory_exit_one(self, shard_dir, capsys):
        path = _first_store_file(shard_dir)
        corrupt_file(path, [os.path.getsize(path) // 2])
        assert main(["fsck", shard_dir]) == 1

    def test_cli_rejects_salvage_for_directories(self, shard_dir, tmp_path, capsys):
        out = str(tmp_path / "salvaged")
        assert main(["fsck", shard_dir, "--salvage", out]) == 2
        assert "salvage" in capsys.readouterr().err
