"""Smoke test for the hot-path benchmark harness.

Runs the real CLI entry point (``repro bench-hotpath --quick``) against a
tiny corpus and checks the report it writes: every section present, every
speedup a positive finite number, and the baseline/optimized stores
measured on identical documents.
"""

from __future__ import annotations

import json

from repro.cli import main


def test_bench_hotpath_quick_writes_report(tmp_path):
    out = tmp_path / "BENCH_hotpath.json"
    code = main(["bench-hotpath", "--quick", "-o", str(out)])
    assert code == 0
    report = json.loads(out.read_text())

    assert report["benchmark"] == "hotpath"
    assert report["config"]["quick"] is True
    assert len(report["scales"]) == 2

    for sections in report["scales"].values():
        assert sections["nodes"] > 0
        for micro in ("key_compare", "point_lookup", "range_count"):
            data = sections[micro]
            assert data["baseline_seconds"] > 0
            assert data["optimized_seconds"] > 0
            assert data["speedup"] > 0
        queries = sections["queries"]
        assert set(queries) == {"Q1", "Q2", "Q3", "Q4", "Q5"}
        for data in queries.values():
            assert data["baseline_seconds"] > 0
            assert data["optimized_seconds"] > 0
            # Byte-key and tuple-key engines returned identical node sets
            # (the harness raises otherwise) and I/O accounting flowed.
            assert data["results"] >= 0
            if data["results"]:
                assert data["pages_read_logical"] > 0
        batched = sections["batched_queries"]
        assert set(batched) == {
            "Q1", "Q2", "Q3", "Q4", "Q5", "D1", "D2", "D3", "D4", "D5",
        }
        for data in batched.values():
            # The harness raises if batched and tuple-at-a-time key
            # sequences differ, so reaching here proves equivalence.
            assert data["tuple_seconds"] > 0
            assert data["batched_seconds"] > 0
            assert data["speedup"] > 0
            assert data["root_descents"] >= 0
            assert data["cursor_resumes"] >= 0
        fused = sections["fused_queries"]
        assert set(fused) == {
            "Q1", "Q2", "Q3", "Q4", "Q5", "D1", "D2", "D3", "D4", "D5",
        }
        # The cost model elects fusion on the node()-heavy deep chains
        # and declines it on the selective name-indexed workloads.
        assert fused["D3"]["fused_plan"] is True
        assert fused["Q1"]["fused_plan"] is False
        for data in fused.values():
            # The harness raises if fused and unfused key sequences
            # differ, so reaching here proves equivalence.
            assert data["unfused_seconds"] > 0
            assert data["fused_seconds"] > 0
            assert data["speedup"] > 0
            assert data["unfused_entries_scanned"] >= 0
            assert data["fused_entries_scanned"] >= 0


def test_bench_hotpath_single_tiny_scale(tmp_path):
    out = tmp_path / "bench.json"
    code = main(["bench-hotpath", "--quick", "--sizes", "0.05", "-o", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert list(report["scales"]) == ["0.05mb"]
